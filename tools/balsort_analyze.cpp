// balsort_analyze — critical-path / overlap analyzer for run artifacts.
//
// Two modes, both thin wrappers over src/obs/analyze.{hpp,cpp}:
//
//   balsort_analyze <trace.json> <manifest.json>
//       Reconstructs the span graph from a Chrome trace + run manifest and
//       reports the critical path, overlap efficiency (hidden vs exposed
//       I/O), per-disk utilization skew, and the stall budget.
//       --json            machine-readable report (balsort-analyze-v1)
//       --out FILE        write the report to FILE instead of stdout
//       --assert-critical-path-within FRAC
//                         exit 1 unless |critical_path - manifest elapsed|
//                         <= FRAC * manifest elapsed (the CI self-check)
//
//   balsort_analyze --diff <old.json> <new.json>
//       Diffs two run manifests or two balsort-bench-v1 suites: model
//       quantities byte-exact (any difference exits 1), wall quantities
//       inside a +/- band (reported, advisory).
//       --wall-band FRAC  relative wall band (default 0.25)
//
// Exit codes: 0 clean, 1 model drift / failed assertion, 2 usage or parse
// error — the benchgate convention.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "obs/analyze.hpp"
#include "obs/json.hpp"

namespace {

std::optional<std::string> slurp(const std::string& path) {
    std::ifstream is(path);
    if (!is) return std::nullopt;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

void usage(std::ostream& os) {
    os << "usage: balsort_analyze <trace.json> <manifest.json> [--json] [--out FILE]\n"
          "                       [--assert-critical-path-within FRAC]\n"
          "       balsort_analyze --diff <old.json> <new.json> [--wall-band FRAC]\n";
}

int run_diff(const std::string& a_path, const std::string& b_path, double band) {
    const auto a_text = slurp(a_path);
    const auto b_text = slurp(b_path);
    if (!a_text || !b_text) {
        std::cerr << "balsort_analyze: cannot read "
                  << (!a_text ? a_path : b_path) << "\n";
        return 2;
    }
    const auto a = balsort::JsonValue::parse(*a_text);
    const auto b = balsort::JsonValue::parse(*b_text);
    if (!a || !b) {
        std::cerr << "balsort_analyze: " << (!a ? a_path : b_path) << ": not valid JSON\n";
        return 2;
    }
    std::string err;
    const auto diff = balsort::diff_documents(*a, *b, band, &err);
    if (!diff) {
        std::cerr << "balsort_analyze: " << err << "\n";
        return 2;
    }
    for (const std::string& line : diff->lines) std::cout << line << "\n";
    if (diff->model_drift) {
        std::cout << "DIFF: model quantities drifted\n";
        return 1;
    }
    std::cout << (diff->wall_drift ? "DIFF: wall drift outside band (model identical)\n"
                                   : "DIFF: identical model quantities\n");
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    bool diff_mode = false;
    bool json_out = false;
    double wall_band = 0.25;
    double assert_within = -1;
    std::string out_path;
    std::string pos[2];
    int n_pos = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto need_value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "balsort_analyze: " << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--diff") {
            diff_mode = true;
        } else if (arg == "--json") {
            json_out = true;
        } else if (arg == "--out") {
            out_path = need_value("--out");
        } else if (arg == "--wall-band") {
            wall_band = std::atof(need_value("--wall-band"));
        } else if (arg == "--assert-critical-path-within") {
            assert_within = std::atof(need_value("--assert-critical-path-within"));
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "balsort_analyze: unknown flag " << arg << "\n";
            usage(std::cerr);
            return 2;
        } else if (n_pos < 2) {
            pos[n_pos++] = arg;
        } else {
            std::cerr << "balsort_analyze: too many arguments\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (n_pos != 2) {
        usage(std::cerr);
        return 2;
    }
    if (diff_mode) return run_diff(pos[0], pos[1], wall_band);

    const auto trace = slurp(pos[0]);
    const auto manifest = slurp(pos[1]);
    if (!trace || !manifest) {
        std::cerr << "balsort_analyze: cannot read " << (!trace ? pos[0] : pos[1]) << "\n";
        return 2;
    }
    std::string err;
    const auto report = balsort::analyze_run(*trace, *manifest, &err);
    if (!report) {
        std::cerr << "balsort_analyze: " << err << "\n";
        return 2;
    }

    std::ostringstream body;
    if (json_out) {
        balsort::write_analyze_json(body, *report);
    } else {
        balsort::write_analyze_text(body, *report);
    }
    if (out_path.empty()) {
        std::cout << body.str();
    } else {
        std::ofstream os(out_path);
        if (!os) {
            std::cerr << "balsort_analyze: cannot write " << out_path << "\n";
            return 2;
        }
        os << body.str();
    }

    if (assert_within >= 0) {
        const double want = report->manifest_elapsed_seconds;
        const double got = report->critical_path_seconds;
        const double tol = assert_within * std::max(want, 1e-9);
        if (std::abs(got - want) > tol) {
            std::cerr << "balsort_analyze: critical path " << got << " s deviates from manifest "
                      << want << " s by more than " << 100 * assert_within << "%\n";
            return 1;
        }
        std::cout << "critical-path check: " << got << " s within " << 100 * assert_within
                  << "% of manifest " << want << " s\n";
    }
    return 0;
}
