// Tests for the fault-tolerance layer (DESIGN.md §8): CRC32 + checksummed
// blocks, deterministic fault injection, FileDisk error paths, and the
// DiskArray recovery ladder — bounded retry, parity reconstruction,
// degraded-mode reads/writes after a permanent single-disk failure — up to
// a full balance_sort surviving a seeded fault storm bit-for-bit
// reproducibly.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>

#include "core/balance_sort.hpp"
#include "pdm/checksum.hpp"
#include "pdm/disk_array.hpp"
#include "pdm/faulty_disk.hpp"
#include "pdm/file_disk.hpp"
#include "pdm/mem_disk.hpp"
#include "pdm/striping.hpp"
#include "util/workload.hpp"

namespace balsort {
namespace {

std::vector<Record> make_block(std::size_t b, std::uint64_t tag) {
    std::vector<Record> blk(b);
    for (std::size_t i = 0; i < b; ++i) blk[i] = {tag * 100 + i, tag};
    return blk;
}

// ---------------------------------------------------------------- checksum

TEST(Crc32, KnownVector) {
    // The canonical CRC-32 check value: crc32("123456789") = 0xcbf43926.
    const char msg[] = "123456789";
    EXPECT_EQ(crc32(msg, 9), 0xcbf43926u);
    EXPECT_EQ(crc32(msg, 0), 0u);
}

TEST(ChecksummedDisk, RoundTripAndGapBlocksPass) {
    ChecksummedDisk d(std::make_unique<MemDisk>(4), 0);
    auto blk = make_block(4, 9);
    d.write_block(3, blk); // blocks 0-2 become zero-filled gaps, no CRC
    std::vector<Record> out(4);
    d.read_block(3, out);
    EXPECT_EQ(out, blk);
    EXPECT_NO_THROW(d.read_block(0, out)); // gap: unverified pass-through
    EXPECT_TRUE(d.has_checksum(3));
    EXPECT_FALSE(d.has_checksum(0));
}

TEST(ChecksummedDisk, DetectsCorruptionUnderneath) {
    ChecksummedDisk d(std::make_unique<MemDisk>(4), 7);
    d.write_block(0, make_block(4, 1));
    // Corrupt the stored image below the checksum layer.
    auto evil = make_block(4, 1);
    evil[2].key ^= 1;
    d.inner().write_block(0, evil);
    std::vector<Record> out(4);
    try {
        d.read_block(0, out);
        FAIL() << "corruption not detected";
    } catch (const CorruptBlock& e) {
        EXPECT_EQ(e.disk(), 7u);
        EXPECT_EQ(e.block(), 0u);
    }
}

TEST(ChecksummedDisk, MarkLostInvalidatesUntilRewritten) {
    ChecksummedDisk d(std::make_unique<MemDisk>(2), 0);
    auto blk = make_block(2, 5);
    d.write_block(1, blk);
    d.mark_lost(1);
    std::vector<Record> out(2);
    EXPECT_THROW(d.read_block(1, out), CorruptBlock);
    d.write_block(1, blk); // a successful rewrite clears the flag
    EXPECT_NO_THROW(d.read_block(1, out));
    EXPECT_EQ(out, blk);
}

// ---------------------------------------------------------- fault injector

/// A MemDisk with blocks [0, n) already written, so a faulted (dropped)
/// write never leaves a later read pointing at an unallocated block.
std::unique_ptr<MemDisk> prefilled_disk(std::uint64_t n, std::size_t b) {
    auto d = std::make_unique<MemDisk>(b);
    const auto blk = make_block(b, 0);
    for (std::uint64_t i = 0; i < n; ++i) d->write_block(i, blk);
    return d;
}

/// Drive `n_ops` alternating writes/reads, recording which ops faulted.
std::vector<int> fault_trace(FaultInjectingDisk& d, int n_ops) {
    std::vector<int> trace;
    auto blk = make_block(4, 1);
    std::vector<Record> out(4);
    for (int i = 0; i < n_ops; ++i) {
        try {
            if (i % 2 == 0) {
                d.write_block(static_cast<std::uint64_t>(i) / 2, blk);
            } else {
                d.read_block(static_cast<std::uint64_t>(i) / 2, out);
            }
            trace.push_back(0);
        } catch (const TransientIoError&) {
            trace.push_back(1);
        } catch (const DiskFailed&) {
            trace.push_back(2);
        }
    }
    return trace;
}

TEST(FaultInjectingDisk, SameSeedSameFaultSequence) {
    FaultSpec spec;
    spec.seed = 42;
    spec.read_transient_rate = 0.2;
    spec.write_transient_rate = 0.2;
    FaultInjectingDisk a(prefilled_disk(200, 4), spec, 3);
    FaultInjectingDisk b(prefilled_disk(200, 4), spec, 3);
    const auto ta = fault_trace(a, 400);
    const auto tb = fault_trace(b, 400);
    EXPECT_EQ(ta, tb);
    EXPECT_GT(a.injected_read_errors() + a.injected_write_errors(), 0u);
    EXPECT_EQ(a.injected_read_errors(), b.injected_read_errors());
    EXPECT_EQ(a.injected_write_errors(), b.injected_write_errors());

    // A different seed gives a different sequence (with 400 ops at rate
    // .2, collision probability is negligible).
    spec.seed = 43;
    FaultInjectingDisk c(prefilled_disk(200, 4), spec, 3);
    EXPECT_NE(fault_trace(c, 400), ta);

    // Different disk ids decorrelate too.
    spec.seed = 42;
    FaultInjectingDisk e(prefilled_disk(200, 4), spec, 4);
    EXPECT_NE(fault_trace(e, 400), ta);
}

TEST(FaultInjectingDisk, DiesPermanentlyAfterConfiguredOps) {
    FaultSpec spec;
    spec.seed = 7;
    spec.die_after_ops = 10;
    FaultInjectingDisk d(std::make_unique<MemDisk>(4), spec, 0);
    auto blk = make_block(4, 2);
    for (std::uint64_t i = 0; i < 10; ++i) EXPECT_NO_THROW(d.write_block(i, blk));
    EXPECT_TRUE(d.alive());
    EXPECT_THROW(d.write_block(10, blk), DiskFailed);
    EXPECT_FALSE(d.alive());
    std::vector<Record> out(4);
    EXPECT_THROW(d.read_block(0, out), DiskFailed); // dead forever
    EXPECT_EQ(d.size_blocks(), 10u);                // metadata survives death
}

TEST(FaultInjectingDisk, SilentCorruptionIsCaughtByChecksumLayer) {
    for (const bool torn : {true, false}) {
        FaultSpec spec;
        spec.seed = 11;
        if (torn) {
            spec.torn_write_rate = 1.0;
        } else {
            spec.bit_flip_rate = 1.0;
        }
        ChecksummedDisk d(
            std::make_unique<FaultInjectingDisk>(std::make_unique<MemDisk>(8), spec, 0), 0);
        d.write_block(0, make_block(8, 3)); // silently corrupted below
        std::vector<Record> out(8);
        EXPECT_THROW(d.read_block(0, out), CorruptBlock) << (torn ? "torn" : "flip");
    }
}

// ------------------------------------------------------- FileDisk hardening

TEST(FileDisk, HugeBlockIndexIsRejectedNotWrapped) {
    FileDisk d("/tmp/balsort_overflow_test.bin", 4);
    auto blk = make_block(4, 1);
    // index * block_bytes would overflow off_t: must throw, not wrap into
    // a bogus small offset.
    EXPECT_THROW(d.write_block(std::uint64_t{1} << 60, blk), std::invalid_argument);
}

TEST(FileDisk, TruncatedFileReadsAsCorruptNotErrno) {
    const std::string path = "/tmp/balsort_truncate_test.bin";
    FileDisk d(path, 4);
    d.write_block(0, make_block(4, 1));
    ASSERT_EQ(::truncate(path.c_str(), 0), 0);
    std::vector<Record> out(4);
    // EOF inside an allocated block is lost data (CorruptBlock), and the
    // message names the block and offset rather than a stale errno.
    try {
        d.read_block(0, out);
        FAIL() << "truncated read did not throw";
    } catch (const CorruptBlock& e) {
        EXPECT_NE(std::string(e.what()).find("block 0"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("byte offset 0"), std::string::npos);
    }
}

TEST(FileDisk, UnallocatedReadIsStillModelViolation) {
    FileDisk d("/tmp/balsort_model_test.bin", 4);
    std::vector<Record> out(4);
    EXPECT_THROW(d.read_block(0, out), ModelViolation);
}

// ------------------------------------------------------ DiskArray recovery

FaultTolerance transient_ft(double rate, std::uint64_t seed) {
    FaultTolerance ft;
    ft.inject.seed = seed;
    ft.inject.read_transient_rate = rate;
    ft.inject.write_transient_rate = rate;
    ft.max_retries = 8;
    return ft;
}

TEST(DiskArrayFaults, TransientErrorsAreRetriedInvisibly) {
    FaultTolerance ft = transient_ft(0.2, 99);
    DiskArray arr(4, 8, DiskBackend::kMemory, ".", Constraint::kIndependentDisks, ft);
    auto recs = generate(Workload::kUniform, 400, 5);
    BlockRun run = write_striped(arr, recs);
    EXPECT_EQ(read_run(arr, run), recs);
    EXPECT_GT(arr.stats().transient_retries, 0u);
    // Model accounting is untouched by recovery: steps as if fault-free.
    DiskArray clean(4, 8);
    BlockRun crun = write_striped(clean, recs);
    (void)read_run(clean, crun);
    EXPECT_EQ(arr.stats().io_steps(), clean.stats().io_steps());
}

TEST(DiskArrayFaults, WithoutParityDeathPropagates) {
    FaultTolerance ft;
    ft.inject.seed = 1;
    ft.inject.die_after_ops = 4;
    ft.die_disk = 1;
    DiskArray arr(2, 4, DiskBackend::kMemory, ".", Constraint::kIndependentDisks, ft);
    auto recs = generate(Workload::kUniform, 64, 6);
    EXPECT_THROW(
        {
            BlockRun run = write_striped(arr, recs);
            (void)read_run(arr, run);
        },
        DiskFailed);
}

TEST(DiskArrayFaults, ParityReconstructsManuallyCorruptedBlock) {
    FaultTolerance ft;
    ft.checksums = true;
    ft.parity = true;
    DiskArray arr(4, 4, DiskBackend::kMemory, ".", Constraint::kIndependentDisks, ft);
    auto recs = generate(Workload::kUniform, 64, 7);
    BlockRun run = write_striped(arr, recs);
    // reconstruct_block must agree with the stored data for every block.
    std::vector<Record> direct(4), rebuilt(4);
    for (const auto& op : run.blocks) {
        arr.disk_for_testing(op.disk).read_block(op.block, direct);
        arr.reconstruct_block(op.disk, op.block, rebuilt);
        EXPECT_EQ(direct, rebuilt) << "disk " << op.disk << " block " << op.block;
    }
}

TEST(DiskArrayFaults, SilentBitRotIsDetectedReconstructedAndScrubbed) {
    FaultTolerance ft;
    ft.checksums = true;
    ft.parity = true;
    DiskArray arr(4, 8, DiskBackend::kMemory, ".", Constraint::kIndependentDisks, ft);
    auto recs = generate(Workload::kUniform, 512, 8);
    BlockRun run = write_striped(arr, recs);
    // Flip one bit *underneath* the checksum layer on disk 1, block 2 —
    // silent corruption the way a real device would rot.
    auto& cs = dynamic_cast<ChecksummedDisk&>(arr.disk_for_testing(1));
    std::vector<Record> img(8);
    cs.inner().read_block(2, img);
    img[5].payload ^= std::uint64_t{1} << 17;
    cs.inner().write_block(2, img);

    EXPECT_EQ(read_run(arr, run), recs); // CRC catches it, parity rebuilds it
    EXPECT_EQ(arr.stats().corrupt_blocks, 1u);
    EXPECT_EQ(arr.stats().reconstructions, 1u);
    EXPECT_EQ(arr.health(1).corrupt_blocks, 1u);

    // The scrub wrote the corrected image back: a raw re-read of the inner
    // device now matches the CRC again, so a second pass is recovery-free.
    EXPECT_EQ(read_run(arr, run), recs);
    EXPECT_EQ(arr.stats().reconstructions, 1u);
}

TEST(DiskArrayFaults, SingleDiskDeathServedInDegradedMode) {
    FaultTolerance ft;
    ft.inject.seed = 31;
    ft.inject.die_after_ops = 12;
    ft.die_disk = 2;
    ft.checksums = true;
    ft.parity = true;
    DiskArray arr(4, 4, DiskBackend::kMemory, ".", Constraint::kIndependentDisks, ft);
    auto recs = generate(Workload::kUniform, 400, 9);
    BlockRun run = write_striped(arr, recs); // disk 2 dies part-way through
    EXPECT_EQ(read_run(arr, run), recs);     // every lost block reconstructed
    EXPECT_FALSE(arr.health(2).alive);
    EXPECT_TRUE(arr.health(0).alive);
    EXPECT_GT(arr.stats().degraded_writes, 0u);
    EXPECT_GT(arr.stats().reconstructions, 0u);
    EXPECT_GT(arr.health(2).reconstructions, 0u);
}

TEST(DiskArrayFaults, ParityCarriedBlockOfDeadDiskIsADoubleFailureForPeers) {
    FaultTolerance ft;
    ft.inject.seed = 31;
    ft.inject.die_after_ops = 12;
    ft.die_disk = 2;
    ft.checksums = true;
    ft.parity = true;
    DiskArray arr(4, 4, DiskBackend::kMemory, ".", Constraint::kIndependentDisks, ft);
    auto recs = generate(Workload::kUniform, 400, 9);
    BlockRun run = write_striped(arr, recs); // disk 2 dies part-way through
    ASSERT_FALSE(arr.health(2).alive);
    ASSERT_GT(arr.health(2).degraded_writes, 0u);

    // A stripe written after the death: disk 2's image there was absorbed
    // by parity (degraded write) and exists nowhere else.
    const std::uint64_t stored = arr.disk_for_testing(2).size_blocks();
    std::uint64_t carried = ~std::uint64_t{0};
    for (const auto& op : run.blocks) {
        if (op.disk == 2 && op.block >= stored) {
            carried = op.block;
            break;
        }
    }
    ASSERT_NE(carried, ~std::uint64_t{0});

    // The carried block itself reconstructs fine — that is degraded mode.
    std::vector<Record> buf(4);
    arr.reconstruct_block(2, carried, buf);

    // But reconstructing a *peer* at that stripe needs the carried image,
    // which cannot be read back from the dead disk. Treating it as zeros
    // (the never-written convention) would return garbage with a clean
    // checksum; it must surface as a double failure instead.
    EXPECT_THROW(arr.reconstruct_block(0, carried, buf), UnrecoverableIo);
}

TEST(DiskArrayFaults, ParityRequiresIndependentDisks) {
    FaultTolerance ft;
    ft.parity = true;
    EXPECT_THROW(DiskArray(4, 2, DiskBackend::kMemory, ".", Constraint::kAggarwalVitter, ft),
                 std::invalid_argument);
}

TEST(IoStatsFaults, ArithmeticCoversRecoveryCounters) {
    IoStats a;
    a.transient_retries = 5;
    a.reconstructions = 2;
    a.parity_blocks_written = 7;
    a.rmw_reads = 3;
    IoStats b = a;
    b += a;
    EXPECT_EQ(b.transient_retries, 10u);
    EXPECT_EQ((b - a).reconstructions, 2u);
    EXPECT_EQ(a.recovery_blocks(), 5u + 2u + 7u + 3u);
}

// ------------------------------------------------- end-to-end balance_sort

struct SoakResult {
    std::vector<Record> sorted;
    SortReport report;
};

SoakResult run_faulty_sort(const PdmConfig& cfg, const FaultTolerance& ft,
                           std::uint64_t data_seed, AsyncIo async_io = AsyncIo::kAuto) {
    DiskArray disks(cfg.d, cfg.b, DiskBackend::kMemory, ".", Constraint::kIndependentDisks, ft);
    auto input = generate(Workload::kUniform, cfg.n, data_seed);
    SortOptions opt;
    opt.synchronized_writes = true;
    opt.async_io = async_io;
    SoakResult r;
    r.sorted = balance_sort_records(disks, input, cfg, opt, &r.report);
    return r;
}

TEST(BalanceSortFaults, SurvivesFaultStormAndSingleDiskDeath) {
    // The ISSUE acceptance scenario: transient rate >= 1e-3, one permanent
    // single-disk failure mid-sort, synchronized writes + parity on.
    PdmConfig cfg{.n = 4000, .m = 512, .d = 4, .b = 8, .p = 4};
    FaultTolerance ft;
    // Parity recovers any *single* failure per stripe; a storm seed must be
    // one whose fault sequence never lands a bit flip on the stripe a dead
    // disk needs for reconstruction (a genuine double failure no RAID-5
    // survives). 2029 is such a seed for the split read/write streams.
    ft.inject.seed = 2029;
    ft.inject.read_transient_rate = 5e-3;
    ft.inject.write_transient_rate = 5e-3;
    ft.inject.bit_flip_rate = 1e-3;
    ft.inject.die_after_ops = 300; // mid-sort: input alone is 125 blocks over 4 disks
    ft.die_disk = 1;
    ft.checksums = true;
    ft.parity = true;

    auto a = run_faulty_sort(cfg, ft, 77);
    EXPECT_TRUE(is_sorted_permutation_of(generate(Workload::kUniform, cfg.n, 77), a.sorted));

    // Health observability: the storm showed up in the report.
    EXPECT_EQ(a.report.disks_failed, 1u);
    EXPECT_GT(a.report.io.transient_retries, 0u);
    EXPECT_GT(a.report.io.reconstructions, 0u);
    EXPECT_GT(a.report.io.degraded_writes, 0u);
    EXPECT_GT(a.report.io.parity_blocks_written, 0u);

    // Determinism extends to fault handling: a second identical run
    // reproduces the identical fault sequence and I/O accounting.
    auto b = run_faulty_sort(cfg, ft, 77);
    EXPECT_EQ(b.sorted, a.sorted);
    EXPECT_EQ(a.report.io.io_steps(), b.report.io.io_steps());
    EXPECT_EQ(a.report.io.transient_retries, b.report.io.transient_retries);
    EXPECT_EQ(a.report.io.corrupt_blocks, b.report.io.corrupt_blocks);
    EXPECT_EQ(a.report.io.reconstructions, b.report.io.reconstructions);
    EXPECT_EQ(a.report.io.degraded_writes, b.report.io.degraded_writes);
}

// --- async engine under faults (DESIGN.md §9) ---
// Recovery runs on the submitting thread after drain(), per-disk FIFO
// preserves each kind's submission order, and the injector draws reads
// and writes from separate streams — so routing a faulty sort through the
// completion queue reproduces the synchronous recovery counters exactly
// for every rate-based fault, as long as recovery I/O does not itself
// interleave with further random faults (transient-only and torn-writes
// below). `die_after_ops` is an op-ORDER fault across both kinds, which
// prefetch legitimately reorders: there the guarantee is the same failed
// disk, the same model accounting, the same sorted output, and perfect
// run-to-run determinism — checked for the death case and for the full
// combined storm.

TEST(BalanceSortFaults, AsyncTransientStormMatchesSyncCountersExactly) {
    // Transients are retried in place on the owning disk's worker, at the
    // same position in that disk's fault stream as the sync retry loop, so
    // every counter — including the retry count — must match bit-for-bit.
    PdmConfig cfg{.n = 4000, .m = 512, .d = 4, .b = 8, .p = 4};
    const FaultTolerance ft = transient_ft(5e-3, 31);

    auto sync = run_faulty_sort(cfg, ft, 81, AsyncIo::kOff);
    auto async = run_faulty_sort(cfg, ft, 81, AsyncIo::kOn);

    EXPECT_GT(sync.report.io.transient_retries, 0u); // the storm was real
    EXPECT_EQ(async.sorted, sync.sorted);
    EXPECT_EQ(async.report.io.io_steps(), sync.report.io.io_steps());
    EXPECT_EQ(async.report.io.blocks_read, sync.report.io.blocks_read);
    EXPECT_EQ(async.report.io.blocks_written, sync.report.io.blocks_written);
    EXPECT_EQ(async.report.io.transient_retries, sync.report.io.transient_retries);
    EXPECT_EQ(async.report.io.corrupt_blocks, 0u);
    // ... and it really went through the engine.
    EXPECT_GT(async.report.io.async_block_ops, 0u);
    EXPECT_EQ(sync.report.io.async_block_ops, 0u);
}

TEST(BalanceSortFaults, AsyncMidSortDiskDeathDegradesIdenticallyToSync) {
    // The death op count straddles reads and writes, so prefetch may shift
    // the exact op it lands on; what must NOT shift: the same disk dies,
    // the model's step accounting is untouched by recovery, the sort
    // still completes with the identical output, and the async run is
    // reproducible down to the last recovery counter.
    PdmConfig cfg{.n = 4000, .m = 512, .d = 4, .b = 8, .p = 4};
    FaultTolerance ft;
    ft.inject.seed = 7;
    ft.inject.die_after_ops = 300;
    ft.die_disk = 1;
    ft.checksums = true;
    ft.parity = true;

    auto sync = run_faulty_sort(cfg, ft, 82, AsyncIo::kOff);
    auto async = run_faulty_sort(cfg, ft, 82, AsyncIo::kOn);

    EXPECT_EQ(sync.report.disks_failed, 1u);
    EXPECT_EQ(async.report.disks_failed, 1u);
    EXPECT_GT(sync.report.io.reconstructions, 0u);
    EXPECT_GT(async.report.io.reconstructions, 0u);
    EXPECT_GT(sync.report.io.degraded_writes, 0u);
    EXPECT_GT(async.report.io.degraded_writes, 0u);
    EXPECT_EQ(async.sorted, sync.sorted);
    EXPECT_EQ(async.report.io.io_steps(), sync.report.io.io_steps());
    EXPECT_EQ(async.report.io.blocks_read, sync.report.io.blocks_read);
    EXPECT_EQ(async.report.io.blocks_written, sync.report.io.blocks_written);
    EXPECT_GT(async.report.io.async_block_ops, 0u);

    auto again = run_faulty_sort(cfg, ft, 82, AsyncIo::kOn);
    EXPECT_EQ(again.sorted, async.sorted);
    EXPECT_EQ(again.report.io.reconstructions, async.report.io.reconstructions);
    EXPECT_EQ(again.report.io.degraded_writes, async.report.io.degraded_writes);
    EXPECT_EQ(again.report.io.parity_blocks_written, async.report.io.parity_blocks_written);
}

TEST(DiskArrayFaults, AsyncTornWritesMatchSyncCountersExactly) {
    // Torn writes are decided at write time; write order per disk is the
    // submission order in both modes (and with parity on, the async write
    // path is the synchronous one anyway), so the same set of blocks tears.
    // The read-back phase then detects and reconstructs the same set.
    FaultTolerance ft;
    ft.inject.seed = 12;
    ft.inject.torn_write_rate = 0.05;
    ft.checksums = true;
    ft.parity = true;
    ft.scrub_on_reconstruct = false; // keep each disk's op stream read-only here

    auto recs = generate(Workload::kUniform, 1000, 9);
    auto run_once = [&](bool use_async) {
        DiskArray arr(4, 8, DiskBackend::kMemory, ".", Constraint::kIndependentDisks, ft);
        if (use_async) arr.set_async(true);
        BlockRun run = write_striped(arr, recs);
        std::vector<Record> out = read_run(arr, run);
        arr.drain_async();
        return std::pair<std::vector<Record>, IoStats>(std::move(out), arr.stats());
    };
    auto [sync_out, sync_stats] = run_once(false);
    auto [async_out, async_stats] = run_once(true);

    EXPECT_EQ(sync_out, recs);
    EXPECT_EQ(async_out, recs);
    EXPECT_GT(sync_stats.corrupt_blocks, 0u); // some writes really tore
    EXPECT_EQ(async_stats.corrupt_blocks, sync_stats.corrupt_blocks);
    EXPECT_EQ(async_stats.reconstructions, sync_stats.reconstructions);
    EXPECT_EQ(async_stats.read_steps, sync_stats.read_steps);
    EXPECT_EQ(async_stats.write_steps, sync_stats.write_steps);
}

TEST(BalanceSortFaults, AsyncFaultStormIsDeterministic) {
    // The full storm (transients + bit flips + mid-sort death) interleaves
    // recovery I/O with randomly-faulting algorithmic I/O; there the async
    // batch boundary can legitimately reorder recovery ops relative to
    // peers' later reads, so cross-mode equality is not guaranteed. What
    // is guaranteed — and what this pins down — is that the async path is
    // itself perfectly reproducible and still sorts through the storm.
    PdmConfig cfg{.n = 4000, .m = 512, .d = 4, .b = 8, .p = 4};
    FaultTolerance ft;
    ft.inject.seed = 2029; // survives as single failures in both modes
    ft.inject.read_transient_rate = 5e-3;
    ft.inject.write_transient_rate = 5e-3;
    ft.inject.bit_flip_rate = 1e-3;
    ft.inject.die_after_ops = 300;
    ft.die_disk = 1;
    ft.checksums = true;
    ft.parity = true;

    auto a = run_faulty_sort(cfg, ft, 77, AsyncIo::kOn);
    EXPECT_TRUE(is_sorted_permutation_of(generate(Workload::kUniform, cfg.n, 77), a.sorted));
    EXPECT_EQ(a.report.disks_failed, 1u);
    EXPECT_GT(a.report.io.transient_retries, 0u);
    EXPECT_GT(a.report.io.reconstructions, 0u);
    EXPECT_GT(a.report.io.degraded_writes, 0u);
    EXPECT_GT(a.report.io.async_block_ops, 0u);

    auto b = run_faulty_sort(cfg, ft, 77, AsyncIo::kOn);
    EXPECT_EQ(b.sorted, a.sorted);
    EXPECT_EQ(b.report.io.io_steps(), a.report.io.io_steps());
    EXPECT_EQ(b.report.io.transient_retries, a.report.io.transient_retries);
    EXPECT_EQ(b.report.io.corrupt_blocks, a.report.io.corrupt_blocks);
    EXPECT_EQ(b.report.io.reconstructions, a.report.io.reconstructions);
    EXPECT_EQ(b.report.io.degraded_writes, a.report.io.degraded_writes);
}

TEST(BalanceSortFaults, SynchronizedWritesMakeParityRmwFree) {
    // §6's claim, measured: with every write fully striped at a common
    // fresh index, parity upkeep needs zero read-modify-write reads.
    PdmConfig cfg{.n = 4000, .m = 512, .d = 4, .b = 8, .p = 2};
    FaultTolerance ft;
    ft.checksums = true;
    ft.parity = true;
    DiskArray disks(cfg.d, cfg.b, DiskBackend::kMemory, ".", Constraint::kIndependentDisks, ft);
    auto input = generate(Workload::kUniform, cfg.n, 13);
    SortOptions opt;
    opt.synchronized_writes = true;
    SortReport rep;
    auto sorted = balance_sort_records(disks, input, cfg, opt, &rep);
    EXPECT_TRUE(is_sorted_by_key(sorted));
    EXPECT_GT(rep.io.parity_blocks_written, 0u);
    EXPECT_EQ(rep.io.rmw_reads, 0u);
    EXPECT_EQ(rep.io.reconstructions, 0u);
}

TEST(BalanceSortFaults, CleanRunStepCountUnchangedByFaultMachinery) {
    // Checksums + parity must not disturb the paper's I/O measure.
    PdmConfig cfg{.n = 2000, .m = 256, .d = 4, .b = 4, .p = 2};
    auto input = generate(Workload::kUniform, cfg.n, 3);
    SortOptions opt;
    opt.synchronized_writes = true;
    SortReport plain, guarded;
    {
        DiskArray disks(cfg.d, cfg.b);
        (void)balance_sort_records(disks, input, cfg, opt, &plain);
    }
    {
        FaultTolerance ft;
        ft.checksums = true;
        ft.parity = true;
        DiskArray disks(cfg.d, cfg.b, DiskBackend::kMemory, ".", Constraint::kIndependentDisks,
                        ft);
        (void)balance_sort_records(disks, input, cfg, opt, &guarded);
    }
    EXPECT_EQ(plain.io.io_steps(), guarded.io.io_steps());
    EXPECT_EQ(plain.io.blocks_written, guarded.io.blocks_written);
}

} // namespace
} // namespace balsort
