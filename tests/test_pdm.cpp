// Tests for src/pdm: disks (memory & file backed), the D-disk parallel I/O
// step semantics and its model checks, batching, striping, run streaming,
// partial striping (virtual disks), and the PdmConfig formulas.
#include <gtest/gtest.h>

#include <filesystem>

#include "pdm/config.hpp"
#include "pdm/disk_array.hpp"
#include "pdm/file_disk.hpp"
#include "pdm/mem_disk.hpp"
#include "pdm/striping.hpp"
#include "util/random.hpp"
#include "util/workload.hpp"

namespace balsort {
namespace {

std::vector<Record> make_block(std::size_t b, std::uint64_t tag) {
    std::vector<Record> blk(b);
    for (std::size_t i = 0; i < b; ++i) blk[i] = {tag * 100 + i, tag};
    return blk;
}

TEST(MemDisk, ReadBackWhatWasWritten) {
    MemDisk d(8);
    EXPECT_EQ(d.size_blocks(), 0u);
    auto blk = make_block(8, 3);
    d.write_block(2, blk); // grows with zero-filled gap
    EXPECT_EQ(d.size_blocks(), 3u);
    std::vector<Record> out(8);
    d.read_block(2, out);
    EXPECT_EQ(out, blk);
    d.read_block(0, out); // gap block is zero-filled
    EXPECT_EQ(out[0], (Record{0, 0}));
}

TEST(MemDisk, ReadingUnallocatedIsModelViolation) {
    MemDisk d(4);
    std::vector<Record> out(4);
    EXPECT_THROW(d.read_block(0, out), ModelViolation);
    std::vector<Record> small(3);
    EXPECT_THROW(d.read_block(0, small), std::invalid_argument);
}

TEST(FileDisk, RoundTripAndCleanup) {
    const std::string path = "/tmp/balsort_test_disk.bin";
    {
        FileDisk d(path, 16);
        auto blk = make_block(16, 7);
        d.write_block(5, blk);
        std::vector<Record> out(16);
        d.read_block(5, out);
        EXPECT_EQ(out, blk);
        EXPECT_TRUE(std::filesystem::exists(path));
        EXPECT_THROW(d.read_block(6, out), ModelViolation);
    }
    EXPECT_FALSE(std::filesystem::exists(path)); // unlinked on close
}

TEST(FileDisk, MatchesMemDiskBehaviour) {
    MemDisk m(4);
    FileDisk f("/tmp/balsort_parity_disk.bin", 4);
    Xoshiro256 rng(1);
    for (int i = 0; i < 50; ++i) {
        const std::uint64_t idx = rng.below(20);
        auto blk = make_block(4, rng.below(1000));
        m.write_block(idx, blk);
        f.write_block(idx, blk);
    }
    EXPECT_EQ(m.size_blocks(), f.size_blocks());
    std::vector<Record> a(4), b(4);
    for (std::uint64_t i = 0; i < m.size_blocks(); ++i) {
        m.read_block(i, a);
        f.read_block(i, b);
        EXPECT_EQ(a, b) << "block " << i;
    }
}

TEST(DiskArray, StepSemanticsEnforced) {
    DiskArray arr(4, 2);
    std::vector<Record> buf(4);
    // Two ops on the same disk in one step: the D-disk model violation.
    std::vector<BlockOp> bad = {{1, 0}, {1, 1}};
    EXPECT_THROW(arr.write_step(bad, buf), ModelViolation);
    // More ops than disks.
    std::vector<BlockOp> too_many = {{0, 0}, {1, 0}, {2, 0}, {3, 0}, {0, 1}};
    std::vector<Record> buf5(10);
    EXPECT_THROW(arr.write_step(too_many, buf5), ModelViolation);
    // Nonexistent disk.
    std::vector<BlockOp> ghost = {{9, 0}};
    std::vector<Record> buf1(2);
    EXPECT_THROW(arr.write_step(ghost, buf1), std::invalid_argument);
}

TEST(DiskArray, AgvModeAllowsSameDisk) {
    DiskArray arr(4, 2, DiskBackend::kMemory, ".", Constraint::kAggarwalVitter);
    std::vector<Record> buf(4, Record{1, 1});
    std::vector<BlockOp> ops = {{1, 0}, {1, 1}};
    EXPECT_NO_THROW(arr.write_step(ops, buf));
    EXPECT_EQ(arr.stats().write_steps, 1u);
    EXPECT_EQ(arr.stats().blocks_written, 2u);
}

TEST(DiskArray, StatsCountStepsAndBlocks) {
    DiskArray arr(4, 2);
    std::vector<Record> buf(6, Record{5, 5});
    std::vector<BlockOp> ops = {{0, 0}, {2, 0}, {3, 0}};
    arr.write_step(ops, buf);
    EXPECT_EQ(arr.stats().write_steps, 1u);
    EXPECT_EQ(arr.stats().blocks_written, 3u);
    std::vector<Record> in(6);
    arr.read_step(ops, in);
    EXPECT_EQ(arr.stats().read_steps, 1u);
    EXPECT_EQ(arr.stats().io_steps(), 2u);
    EXPECT_EQ(in, buf);
    EXPECT_DOUBLE_EQ(arr.stats().utilization(4), 6.0 / 8.0);
}

TEST(DiskArray, BatchUsesMinimalSteps) {
    DiskArray arr(3, 2);
    // Lay down blocks: disk 0 gets 3 blocks, disks 1-2 get 1 each.
    std::vector<BlockOp> ops;
    for (std::uint64_t i = 0; i < 3; ++i) ops.push_back({0, i});
    ops.push_back({1, 0});
    ops.push_back({2, 0});
    std::vector<Record> data(ops.size() * 2);
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = {i, i};
    arr.write_batch(ops, data);
    // max-per-disk = 3 -> exactly 3 write steps.
    EXPECT_EQ(arr.stats().write_steps, 3u);
    std::vector<Record> in(data.size());
    arr.read_batch(ops, in);
    EXPECT_EQ(arr.stats().read_steps, 3u);
    EXPECT_EQ(in, data);
}

TEST(DiskArray, AllocatorBumpsPerDisk) {
    DiskArray arr(2, 4);
    EXPECT_EQ(arr.allocate(0), 0u);
    EXPECT_EQ(arr.allocate(0, 3), 1u);
    EXPECT_EQ(arr.allocate(0), 4u);
    EXPECT_EQ(arr.allocate(1), 0u);
    EXPECT_EQ(arr.high_water(0), 5u);
    EXPECT_EQ(arr.high_water(1), 1u);
}

TEST(DiskArray, StepObserverSeesSteps) {
    DiskArray arr(2, 2);
    int reads = 0, writes = 0;
    arr.set_step_observer([&](bool is_read, std::span<const BlockOp> ops) {
        (is_read ? reads : writes) += static_cast<int>(ops.size());
    });
    std::vector<Record> buf(2, Record{1, 1});
    std::vector<BlockOp> op = {{0, 0}};
    arr.write_step(op, buf);
    std::vector<Record> in(2);
    arr.read_step(op, in);
    EXPECT_EQ(writes, 1);
    EXPECT_EQ(reads, 1);
}

class StripingRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> {};

TEST_P(StripingRoundTrip, WriteThenReadBack) {
    auto [d, b, n] = GetParam();
    DiskArray arr(d, b);
    auto recs = generate(Workload::kUniform, n, n + d + b);
    BlockRun run = write_striped(arr, recs);
    EXPECT_EQ(run.n_records, n);
    EXPECT_EQ(run.n_blocks(), ceil_div(n, b));
    auto out = read_run(arr, run);
    EXPECT_EQ(out, recs);
    // Striped runs read at full parallelism: steps == ceil(blocks / D).
    EXPECT_EQ(run.read_steps(d), run.optimal_read_steps(d));
}

INSTANTIATE_TEST_SUITE_P(Sweep, StripingRoundTrip,
                         ::testing::Combine(::testing::Values(1u, 2u, 4u, 7u),
                                            ::testing::Values(1u, 3u, 8u),
                                            ::testing::Values(std::uint64_t{0},
                                                              std::uint64_t{1},
                                                              std::uint64_t{17},
                                                              std::uint64_t{256})));

TEST(RunWriter, StripesAcrossDisksInOrder) {
    DiskArray arr(4, 2);
    auto recs = generate(Workload::kSorted, 24, 5); // 12 blocks = 3 stripes
    BlockRun run = write_striped(arr, recs);
    ASSERT_EQ(run.blocks.size(), 12u);
    for (std::size_t i = 0; i < run.blocks.size(); ++i) {
        EXPECT_EQ(run.blocks[i].disk, i % 4) << "block " << i;
    }
    // 3 full stripes -> 3 write steps.
    EXPECT_EQ(arr.stats().write_steps, 3u);
}

TEST(RunWriter, AppendAfterFinishThrows) {
    DiskArray arr(2, 2);
    RunWriter w(arr);
    w.append(Record{1, 1});
    (void)w.finish();
    EXPECT_THROW(w.append(Record{2, 2}), std::invalid_argument);
    EXPECT_THROW(w.finish(), std::invalid_argument);
}

TEST(RunReader, ChunkedReadsAnySize) {
    DiskArray arr(3, 4);
    auto recs = generate(Workload::kUniform, 101, 77);
    BlockRun run = write_striped(arr, recs);
    for (std::uint64_t chunk : {1ull, 2ull, 5ull, 13ull, 101ull}) {
        RunReader r(arr, run);
        std::vector<Record> out;
        std::vector<Record> buf;
        while (r.remaining() > 0) {
            buf.resize(std::min<std::uint64_t>(chunk, r.remaining()));
            const auto got = r.read(buf);
            out.insert(out.end(), buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(got));
        }
        EXPECT_EQ(out, recs) << "chunk=" << chunk;
    }
}

TEST(VirtualDisks, DefaultCountIsDivisorNearCubeRoot) {
    EXPECT_EQ(VirtualDisks::default_virtual_count(1), 1u);
    EXPECT_EQ(VirtualDisks::default_virtual_count(8), 2u);
    EXPECT_EQ(VirtualDisks::default_virtual_count(64), 4u);
    EXPECT_EQ(VirtualDisks::default_virtual_count(27), 3u);
    // Always a divisor:
    for (std::uint32_t d = 1; d <= 64; ++d) {
        EXPECT_EQ(d % VirtualDisks::default_virtual_count(d), 0u) << d;
    }
    // Exponent 1.0 means full independence (D' = D).
    EXPECT_EQ(VirtualDisks::default_virtual_count(12, 1.0), 12u);
}

TEST(VirtualDisks, RejectsNonDivisor) {
    DiskArray arr(6, 2);
    EXPECT_THROW(VirtualDisks(arr, 4), std::invalid_argument);
    EXPECT_THROW(VirtualDisks(arr, 0), std::invalid_argument);
    EXPECT_NO_THROW(VirtualDisks(arr, 3));
}

TEST(VirtualDisks, WriteTrackIsOneStepAndReadsBack) {
    DiskArray arr(8, 2);
    VirtualDisks vd(arr, 2); // group = 4, vblock = 8 records
    EXPECT_EQ(vd.group_size(), 4u);
    EXPECT_EQ(vd.vblock_records(), 8u);
    auto recs = generate(Workload::kUniform, 16, 3);
    std::vector<std::uint32_t> vds = {0, 1};
    auto vbs = vd.write_track(vds, recs);
    EXPECT_EQ(arr.stats().write_steps, 1u);
    EXPECT_EQ(arr.stats().blocks_written, 8u);
    std::vector<Record> out(16);
    vd.read_vblocks(vbs, out);
    EXPECT_EQ(out, recs);
    EXPECT_EQ(arr.stats().read_steps, 1u);
}

TEST(VirtualDisks, DuplicateVdiskInTrackIsViolation) {
    DiskArray arr(4, 2);
    VirtualDisks vd(arr, 2);
    auto recs = generate(Workload::kUniform, 8, 4);
    std::vector<std::uint32_t> vds = {1, 1};
    EXPECT_THROW(vd.write_track(vds, recs), ModelViolation);
}

TEST(VirtualDisks, BatchedVblockReadsMinimalSteps) {
    DiskArray arr(4, 2);
    VirtualDisks vd(arr, 2); // group 2, vblock = 4 records
    // Write 3 vblocks on vdisk 0, 1 on vdisk 1 (4 tracks... do 3 tracks).
    std::vector<VirtualDisks::VBlock> all;
    auto recs = generate(Workload::kUniform, 4, 5);
    for (int i = 0; i < 3; ++i) {
        std::vector<std::uint32_t> vds = {0};
        auto vbs = vd.write_track(vds, recs);
        all.push_back(vbs[0]);
    }
    {
        std::vector<std::uint32_t> vds = {1};
        auto vbs = vd.write_track(vds, recs);
        all.push_back(vbs[0]);
    }
    const auto before = arr.stats().read_steps;
    std::vector<Record> out(16);
    vd.read_vblocks(all, out);
    // 3 vblocks on vdisk 0 gate the batch: 3 steps.
    EXPECT_EQ(arr.stats().read_steps - before, 3u);
}

TEST(PdmConfig, Validation) {
    PdmConfig ok{.n = 1000, .m = 64, .d = 4, .b = 8, .p = 2};
    EXPECT_NO_THROW(ok.validate());
    EXPECT_NO_THROW(ok.validate(true));
    PdmConfig big_db{.n = 1000, .m = 64, .d = 8, .b = 8, .p = 2}; // DB > M/2
    EXPECT_THROW(big_db.validate(), std::invalid_argument);
    PdmConfig bad_p{.n = 1000, .m = 64, .d = 4, .b = 8, .p = 100}; // P > M
    EXPECT_THROW(bad_p.validate(), std::invalid_argument);
    PdmConfig internal{.n = 50, .m = 64, .d = 4, .b = 8, .p = 1}; // N <= M
    EXPECT_NO_THROW(internal.validate());
    EXPECT_THROW(internal.validate(true), std::invalid_argument);
}

TEST(PdmConfig, FormulasMatchHand) {
    PdmConfig cfg{.n = 1 << 20, .m = 1 << 16, .d = 8, .b = 64, .p = 1};
    // optimal = (N/DB) * log(N/B) / log(M/B) = 2048 * 14/10.
    EXPECT_NEAR(cfg.optimal_ios(), 2048.0 * 14.0 / 10.0, 1e-6);
    EXPECT_NEAR(cfg.optimal_work(), static_cast<double>(1 << 20) * 20.0, 1e-6);
    EXPECT_EQ(cfg.blocks(), (1u << 20) / 64);
    EXPECT_EQ(cfg.memoryloads(), 16u);
    EXPECT_GT(cfg.striped_merge_ios(), 2.0 * 2048.0); // at least 2 passes
}

TEST(IoStats, Arithmetic) {
    IoStats a{10, 5, 100, 50};
    IoStats b{4, 2, 40, 20};
    IoStats d = a - b;
    EXPECT_EQ(d.read_steps, 6u);
    EXPECT_EQ(d.io_steps(), 9u);
    b += d;
    EXPECT_EQ(b.read_steps, a.read_steps);
    d.reset();
    EXPECT_EQ(d.io_steps(), 0u);
}

TEST(FileBackedArray, EndToEndRoundTrip) {
    DiskArray arr(4, 8, DiskBackend::kFile, "/tmp");
    auto recs = generate(Workload::kUniform, 500, 12);
    BlockRun run = write_striped(arr, recs);
    auto out = read_run(arr, run);
    EXPECT_EQ(out, recs);
}

} // namespace
} // namespace balsort
