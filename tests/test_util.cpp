// Tests for src/util: math helpers, records, RNG, stats, tables, workloads.
#include <gtest/gtest.h>

#include <set>

#include "pdm/io_stats.hpp"
#include "util/math.hpp"
#include "util/random.hpp"
#include "util/record.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/workload.hpp"

namespace balsort {
namespace {

TEST(Math, CeilDiv) {
    EXPECT_EQ(ceil_div(0, 3), 0u);
    EXPECT_EQ(ceil_div(1, 3), 1u);
    EXPECT_EQ(ceil_div(3, 3), 1u);
    EXPECT_EQ(ceil_div(4, 3), 2u);
    EXPECT_EQ(ceil_div(9, 3), 3u);
}

TEST(Math, RoundUp) {
    EXPECT_EQ(round_up(0, 4), 0u);
    EXPECT_EQ(round_up(1, 4), 4u);
    EXPECT_EQ(round_up(4, 4), 4u);
    EXPECT_EQ(round_up(5, 4), 8u);
}

TEST(Math, Ilog2) {
    EXPECT_EQ(ilog2_floor(1), 0u);
    EXPECT_EQ(ilog2_floor(2), 1u);
    EXPECT_EQ(ilog2_floor(3), 1u);
    EXPECT_EQ(ilog2_floor(1024), 10u);
    EXPECT_EQ(ilog2_ceil(1), 0u);
    EXPECT_EQ(ilog2_ceil(3), 2u);
    EXPECT_EQ(ilog2_ceil(1024), 10u);
    EXPECT_EQ(ilog2_ceil(1025), 11u);
}

TEST(Math, PaperLogClampsAtOne) {
    // Footnote 1: log x := max{1, log2 x}.
    EXPECT_DOUBLE_EQ(paper_log(0.5), 1.0);
    EXPECT_DOUBLE_EQ(paper_log(1.0), 1.0);
    EXPECT_DOUBLE_EQ(paper_log(2.0), 1.0);
    EXPECT_DOUBLE_EQ(paper_log(8.0), 3.0);
}

TEST(Math, Iroot) {
    EXPECT_EQ(iroot(0, 3), 0u);
    EXPECT_EQ(iroot(1, 5), 1u);
    EXPECT_EQ(iroot(26, 3), 2u);
    EXPECT_EQ(iroot(27, 3), 3u);
    EXPECT_EQ(iroot(28, 3), 3u);
    EXPECT_EQ(isqrt(15), 3u);
    EXPECT_EQ(isqrt(16), 4u);
    EXPECT_EQ(iroot(std::uint64_t{1} << 62, 62), 2u);
}

TEST(Math, IsPow2) {
    EXPECT_FALSE(is_pow2(0));
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(64));
    EXPECT_FALSE(is_pow2(65));
}

TEST(Record, OrderingByKeyThenPayload) {
    Record a{1, 5}, b{2, 0}, c{1, 6};
    EXPECT_LT(a, b);
    EXPECT_LT(a, c);
    EXPECT_TRUE(KeyLess{}(a, b));
    EXPECT_FALSE(KeyLess{}(a, c)); // same key: KeyLess sees them equal
}

TEST(Record, MakeKeysDistinct) {
    std::vector<Record> r = {{7, 0}, {7, 1}, {3, 2}};
    make_keys_distinct(r);
    std::set<std::uint64_t> keys;
    for (const auto& rec : r) keys.insert(rec.key);
    EXPECT_EQ(keys.size(), 3u);
    // Relative order of distinct original keys is preserved.
    EXPECT_GT(r[0].key, r[2].key);
    // Equal original keys are ordered by position (stability).
    EXPECT_LT(r[0].key, r[1].key);
}

TEST(Random, Deterministic) {
    Xoshiro256 a(42), b(42), c(43);
    EXPECT_EQ(a(), b());
    Xoshiro256 a2(42);
    (void)c();
    EXPECT_NE(a2(), c());
}

TEST(Random, BelowIsInRange) {
    Xoshiro256 rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
    }
    EXPECT_EQ(rng.below(1), 0u);
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(Random, Uniform01Bounds) {
    Xoshiro256 rng(9);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Random, NextPrime) {
    EXPECT_EQ(PairwiseHash::next_prime(1), 2u);
    EXPECT_EQ(PairwiseHash::next_prime(2), 2u);
    EXPECT_EQ(PairwiseHash::next_prime(8), 11u);
    EXPECT_EQ(PairwiseHash::next_prime(13), 13u);
    EXPECT_EQ(PairwiseHash::next_prime(90), 97u);
}

TEST(Random, PairwiseHashInRange) {
    const std::uint64_t p = PairwiseHash::next_prime(16);
    PairwiseHash h(3, 5, p, 16);
    for (std::uint64_t i = 0; i < 100; ++i) {
        EXPECT_LT(h(i), 16u);
    }
}

TEST(Random, PermutationIsPermutation) {
    auto p = random_permutation(100, 5);
    std::set<std::uint32_t> seen(p.begin(), p.end());
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Random, PermutationSeedSensitivity) {
    EXPECT_NE(random_permutation(50, 1), random_permutation(50, 2));
    EXPECT_EQ(random_permutation(50, 3), random_permutation(50, 3));
}

TEST(Stats, Basic) {
    Summary s;
    for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) s.add(v);
    EXPECT_EQ(s.count(), 5u);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
    EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(Stats, Percentile) {
    Summary s;
    for (int i = 1; i <= 100; ++i) s.add(i);
    EXPECT_DOUBLE_EQ(s.percentile(1), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(Stats, EmptyThrows) {
    Summary s;
    EXPECT_THROW(s.min(), std::invalid_argument);
    EXPECT_THROW(s.percentile(50), std::invalid_argument);
}

TEST(Stats, PercentileSingleElement) {
    Summary s;
    s.add(7.5);
    EXPECT_DOUBLE_EQ(s.percentile(0), 7.5);
    EXPECT_DOUBLE_EQ(s.percentile(50), 7.5);
    EXPECT_DOUBLE_EQ(s.percentile(100), 7.5);
}

TEST(Stats, PercentileExtremesAreMinAndMax) {
    Summary s;
    for (double v : {30.0, 10.0, 20.0}) s.add(v);
    EXPECT_DOUBLE_EQ(s.percentile(0), s.min());
    EXPECT_DOUBLE_EQ(s.percentile(100), s.max());
    EXPECT_THROW(s.percentile(-1), std::invalid_argument);
    EXPECT_THROW(s.percentile(100.5), std::invalid_argument);
}

TEST(Stats, PercentileResortsAfterLaterAdd) {
    Summary s;
    for (double v : {5.0, 9.0, 7.0}) s.add(v);
    EXPECT_DOUBLE_EQ(s.median(), 7.0);
    // Adding after a query must invalidate the sorted cache.
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 9.0);
}

TEST(IoStats, IntervalDeltaSubtractsFlows) {
    IoStats before;
    before.read_steps = 10;
    before.write_steps = 4;
    before.blocks_read = 80;
    before.blocks_written = 32;
    before.transient_retries = 1;
    before.async_block_ops = 50;
    IoStats after = before;
    after.read_steps = 25;
    after.write_steps = 9;
    after.blocks_read = 200;
    after.blocks_written = 72;
    after.transient_retries = 3;
    after.async_block_ops = 130;
    const IoStats delta = after - before;
    EXPECT_EQ(delta.read_steps, 15u);
    EXPECT_EQ(delta.write_steps, 5u);
    EXPECT_EQ(delta.io_steps(), 20u);
    EXPECT_EQ(delta.blocks_read, 120u);
    EXPECT_EQ(delta.blocks_written, 40u);
    EXPECT_EQ(delta.transient_retries, 2u);
    EXPECT_EQ(delta.async_block_ops, 80u);
}

TEST(IoStats, IntervalDeltaKeepsHighWaterMark) {
    // max_in_flight is a peak, not a flow: the delta reports the interval
    // end's peak unchanged rather than subtracting the start snapshot's.
    IoStats before;
    before.max_in_flight = 6;
    IoStats after;
    after.max_in_flight = 9;
    EXPECT_EQ((after - before).max_in_flight, 9u);
    // Accumulation takes the max, never the sum.
    IoStats total;
    total.max_in_flight = 4;
    total += after;
    EXPECT_EQ(total.max_in_flight, 9u);
    IoStats small;
    small.max_in_flight = 2;
    total += small;
    EXPECT_EQ(total.max_in_flight, 9u);
}

TEST(Table, FormatsAndPrints) {
    Table t({"A", "BB"});
    t.add_row({"1", "2"});
    t.add_separator();
    t.add_row({"333", "4"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("333"), std::string::npos);
    EXPECT_NE(out.find("BB"), std::string::npos);
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumberFormatting) {
    EXPECT_EQ(Table::num(0), "0");
    EXPECT_EQ(Table::num(999), "999");
    EXPECT_EQ(Table::num(1000), "1,000");
    EXPECT_EQ(Table::num(1234567), "1,234,567");
    EXPECT_EQ(Table::fixed(3.14159, 2), "3.14");
}

TEST(Workload, AllGeneratorsProduceRequestedCount) {
    for (Workload w : all_workloads()) {
        auto r = generate(w, 1000, 42);
        EXPECT_EQ(r.size(), 1000u) << to_string(w);
        // Payload records the initial index.
        EXPECT_EQ(r[17].payload, 17u) << to_string(w);
    }
}

TEST(Workload, SortedIsSorted) {
    auto r = generate(Workload::kSorted, 500, 1);
    EXPECT_TRUE(is_sorted_by_key(r));
    auto rev = generate(Workload::kReverse, 500, 1);
    EXPECT_FALSE(is_sorted_by_key(rev));
}

TEST(Workload, DistinctReallyDistinct) {
    for (Workload w : all_workloads()) {
        auto r = generate_distinct(w, 2000, 7);
        std::set<std::uint64_t> keys;
        for (const auto& rec : r) keys.insert(rec.key);
        EXPECT_EQ(keys.size(), r.size()) << to_string(w);
    }
}

TEST(Workload, DeterministicInSeed) {
    auto a = generate(Workload::kUniform, 100, 5);
    auto b = generate(Workload::kUniform, 100, 5);
    auto c = generate(Workload::kUniform, 100, 6);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(Workload, SortedPermutationChecker) {
    auto in = generate(Workload::kUniform, 200, 3);
    auto sorted = in;
    std::sort(sorted.begin(), sorted.end(), KeyLess{});
    EXPECT_TRUE(is_sorted_permutation_of(in, sorted));
    sorted[0].key += 1; // corrupt
    EXPECT_FALSE(is_sorted_permutation_of(in, sorted));
}

TEST(Workload, DuplicateHeavyHasFewKeys) {
    auto r = generate(Workload::kDuplicateHeavy, 5000, 11);
    std::set<std::uint64_t> keys;
    for (const auto& rec : r) keys.insert(rec.key);
    EXPECT_LE(keys.size(), 16u);
}

} // namespace
} // namespace balsort
