// Tests for the paper's §6 extensions implemented in this library:
//  * min-cost-matching balance (the §6 conjecture), via the Hungarian
//    assignment solver,
//  * synchronized (fully striped) writes,
//  * block release / space reuse (the O(N)-footprint contract the
//    hierarchy models rely on).
#include <gtest/gtest.h>

#include <set>

#include "core/balance_sort.hpp"
#include "pram/hungarian.hpp"
#include "util/random.hpp"
#include "util/workload.hpp"

namespace balsort {
namespace {

// ---------- Hungarian solver ----------

std::int64_t assignment_cost(const std::vector<std::int64_t>& cost, std::uint32_t rows,
                             std::uint32_t cols, const std::vector<std::uint32_t>& pick) {
    std::int64_t total = 0;
    std::set<std::uint32_t> used;
    for (std::uint32_t r = 0; r < rows; ++r) {
        EXPECT_LT(pick[r], cols);
        EXPECT_TRUE(used.insert(pick[r]).second) << "duplicate column";
        total += cost[static_cast<std::size_t>(r) * cols + pick[r]];
    }
    return total;
}

std::int64_t brute_force_best(const std::vector<std::int64_t>& cost, std::uint32_t rows,
                              std::uint32_t cols) {
    std::vector<std::uint32_t> perm(cols);
    for (std::uint32_t i = 0; i < cols; ++i) perm[i] = i;
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    do {
        std::int64_t total = 0;
        for (std::uint32_t r = 0; r < rows; ++r) {
            total += cost[static_cast<std::size_t>(r) * cols + perm[r]];
        }
        best = std::min(best, total);
    } while (std::next_permutation(perm.begin(), perm.end()));
    return best;
}

TEST(Hungarian, SmallKnownInstance) {
    // Classic 3x3: optimal assignment cost 5 (0->1, 1->0, 2->2).
    std::vector<std::int64_t> cost = {4, 1, 3,
                                      2, 0, 5,
                                      3, 2, 2};
    auto pick = min_cost_assignment(cost, 3, 3);
    EXPECT_EQ(assignment_cost(cost, 3, 3, pick), 5);
}

TEST(Hungarian, MatchesBruteForceOnRandomInstances) {
    Xoshiro256 rng(17);
    for (int trial = 0; trial < 60; ++trial) {
        const std::uint32_t cols = 2 + static_cast<std::uint32_t>(rng.below(5)); // <= 6
        const std::uint32_t rows = 1 + static_cast<std::uint32_t>(rng.below(cols));
        std::vector<std::int64_t> cost(static_cast<std::size_t>(rows) * cols);
        for (auto& c : cost) c = static_cast<std::int64_t>(rng.below(50));
        auto pick = min_cost_assignment(cost, rows, cols);
        EXPECT_EQ(assignment_cost(cost, rows, cols, pick),
                  brute_force_best(cost, rows, cols))
            << "trial " << trial;
    }
}

TEST(Hungarian, RectangularAndEdgeCases) {
    std::vector<std::int64_t> one = {7, 3, 9};
    auto pick = min_cost_assignment(one, 1, 3);
    EXPECT_EQ(pick[0], 1u);
    EXPECT_THROW(min_cost_assignment(one, 3, 1), std::invalid_argument);
    EXPECT_THROW(min_cost_assignment(one, 1, 2), std::invalid_argument);
}

TEST(Hungarian, NegativeCosts) {
    std::vector<std::int64_t> cost = {-5, 2,
                                      3, -7};
    auto pick = min_cost_assignment(cost, 2, 2);
    EXPECT_EQ(assignment_cost(cost, 2, 2, pick), -12);
}

// ---------- §6 conjecture: min-cost-matching balance ----------

TEST(MinCostBalance, SortsAndNeedsNoRebalancing) {
    PdmConfig cfg{.n = 1 << 16, .m = 1 << 11, .d = 8, .b = 16, .p = 2};
    for (Workload w : {Workload::kUniform, Workload::kGaussian, Workload::kZipf}) {
        DiskArray disks(cfg.d, cfg.b);
        auto input = generate(w, cfg.n, 31);
        SortOptions opt;
        opt.balance.assign = AssignPolicy::kMinCostMatching;
        opt.balance.check_invariants = true;
        SortReport rep;
        auto sorted = balance_sort_records(disks, input, cfg, opt, &rep);
        EXPECT_TRUE(is_sorted_permutation_of(input, sorted)) << to_string(w);
        // The §6 conjecture, observed: min-cost placement leaves almost
        // nothing for the Rebalance machinery to fix. (Not exactly zero:
        // a track carrying several blocks of one hot bucket can push the
        // later ones past median+1 — skewed inputs only.)
        EXPECT_LE(rep.balance.matched_blocks + rep.balance.deferred_blocks,
                  rep.balance.direct_blocks / 50)
            << to_string(w);
        EXPECT_TRUE(rep.balance.invariant2_held);
        EXPECT_LE(rep.worst_bucket_read_ratio, 2.0);
    }
}

TEST(MinCostBalance, BalancesAtLeastAsWellAsCyclic) {
    PdmConfig cfg{.n = 1 << 16, .m = 1 << 11, .d = 8, .b = 16, .p = 1};
    auto input = generate(Workload::kZipf, cfg.n, 3);
    SortReport cyclic_rep, mincost_rep;
    {
        DiskArray disks(cfg.d, cfg.b);
        (void)balance_sort_records(disks, input, cfg, SortOptions{}, &cyclic_rep);
    }
    {
        DiskArray disks(cfg.d, cfg.b);
        SortOptions opt;
        opt.balance.assign = AssignPolicy::kMinCostMatching;
        (void)balance_sort_records(disks, input, cfg, opt, &mincost_rep);
    }
    EXPECT_LE(mincost_rep.worst_bucket_read_ratio,
              cyclic_rep.worst_bucket_read_ratio + 1e-9);
    EXPECT_EQ(mincost_rep.io.blocks_written, cyclic_rep.io.blocks_written);
}

// ---------- §6: synchronized (fully striped) writes ----------

TEST(SynchronizedWrites, EveryBucketWriteStepIsOneStripe) {
    PdmConfig cfg{.n = 1 << 15, .m = 1 << 10, .d = 8, .b = 8, .p = 1};
    DiskArray disks(cfg.d, cfg.b);
    auto input = generate(Workload::kUniform, cfg.n, 9);
    BlockRun run = write_striped(disks, input);
    // Observe every write step; bucket writes (multi-block steps from the
    // VirtualDisks) must be same-index stripes.
    bool all_striped = true;
    disks.set_step_observer([&](bool is_read, std::span<const BlockOp> ops) {
        if (is_read || ops.size() < 2) return;
        for (std::size_t i = 1; i < ops.size(); ++i) {
            if (ops[i].block != ops[0].block) {
                // RunWriter stripes (input/output) may reuse released
                // blocks at differing indices; only vdisk tracks are
                // synchronized. Distinguish by group pattern: vdisk tracks
                // write groups of consecutive disks starting at h*g.
                all_striped = false;
            }
        }
    });
    SortOptions opt;
    opt.synchronized_writes = true;
    SortReport rep;
    BlockRun out = balance_sort(disks, run, cfg, opt, &rep);
    disks.set_step_observer(nullptr);
    auto sorted = read_run(disks, out);
    EXPECT_TRUE(is_sorted_permutation_of(input, sorted));
    (void)all_striped; // see focused check below
}

TEST(SynchronizedWrites, TrackWritesShareOneIndex) {
    DiskArray disks(8, 4);
    VirtualDisks vd(disks, 4, /*synchronized_writes=*/true);
    auto recs = generate(Workload::kUniform, 3 * vd.vblock_records(), 5);
    std::vector<std::uint32_t> vds = {0, 2, 3};
    auto vbs = vd.write_track(vds, recs);
    std::set<std::uint64_t> indices;
    for (const auto& vb : vbs) {
        for (const auto& op : vb.ops) indices.insert(op.block);
    }
    EXPECT_EQ(indices.size(), 1u) << "synchronized track must land on one stripe index";
    // A second track lands strictly deeper.
    auto vbs2 = vd.write_track(vds, recs);
    EXPECT_GT(vbs2[0].ops[0].block, vbs[0].ops[0].block);
    // Data still reads back.
    std::vector<Record> out(recs.size());
    vd.read_vblocks(vbs, out);
    EXPECT_EQ(out, recs);
}

TEST(SynchronizedWrites, SameIoStepsMoreSpace) {
    PdmConfig cfg{.n = 1 << 15, .m = 1 << 10, .d = 8, .b = 8, .p = 1};
    auto input = generate(Workload::kGaussian, cfg.n, 21);
    SortReport plain, synced;
    std::uint64_t plain_hw = 0, synced_hw = 0;
    {
        DiskArray disks(cfg.d, cfg.b);
        (void)balance_sort_records(disks, input, cfg, SortOptions{}, &plain);
        for (std::uint32_t d = 0; d < cfg.d; ++d) plain_hw += disks.high_water(d);
    }
    {
        DiskArray disks(cfg.d, cfg.b);
        SortOptions opt;
        opt.synchronized_writes = true;
        (void)balance_sort_records(disks, input, cfg, opt, &synced);
        for (std::uint32_t d = 0; d < cfg.d; ++d) synced_hw += disks.high_water(d);
    }
    EXPECT_EQ(plain.io.blocks_written, synced.io.blocks_written);
    EXPECT_GE(synced_hw, plain_hw); // the space cost of full striping
}

// ---------- allocator release/reuse ----------

TEST(Allocator, ReleaseReusesShallowestFirst) {
    DiskArray disks(2, 4);
    EXPECT_EQ(disks.allocate(0), 0u);
    EXPECT_EQ(disks.allocate(0), 1u);
    EXPECT_EQ(disks.allocate(0), 2u);
    disks.release(0, 2);
    disks.release(0, 0);
    EXPECT_EQ(disks.free_blocks(0), 2u);
    EXPECT_EQ(disks.allocate(0), 0u); // shallowest first
    EXPECT_EQ(disks.allocate(0), 2u);
    EXPECT_EQ(disks.allocate(0), 3u); // back to bump
    EXPECT_THROW(disks.release(0, 99), std::invalid_argument);
}

TEST(Allocator, SortFootprintStaysBounded) {
    // With bucket release, total allocated space stays O(N/D/B + slack)
    // even across many recursion levels.
    PdmConfig cfg{.n = 1 << 17, .m = 1 << 10, .d = 8, .b = 8, .p = 1};
    DiskArray disks(cfg.d, cfg.b);
    auto input = generate(Workload::kUniform, cfg.n, 13);
    SortReport rep;
    auto sorted = balance_sort_records(disks, input, cfg, SortOptions{}, &rep);
    ASSERT_TRUE(is_sorted_by_key(sorted));
    ASSERT_GE(rep.levels, 3u); // deep recursion actually happened
    std::uint64_t total_hw = 0;
    for (std::uint32_t d = 0; d < cfg.d; ++d) total_hw += disks.high_water(d);
    const std::uint64_t data_blocks = ceil_div(cfg.n, cfg.b);
    // input + output + in-flight level + staging slack: well under 2 full
    // copies beyond input+output despite >= 3 levels of recursion.
    EXPECT_LE(total_hw, 4 * data_blocks + 64);
}

TEST(Allocator, VRunReleaseReturnsEverything) {
    DiskArray disks(4, 4);
    VirtualDisks vd(disks, 2);
    auto recs = generate(Workload::kUniform, vd.vblock_records() * 4, 3);
    VRun run;
    for (int i = 0; i < 4; ++i) {
        std::vector<std::uint32_t> vds = {static_cast<std::uint32_t>(i % 2)};
        auto vbs = vd.write_track(
            vds, std::span<const Record>(recs.data() + i * vd.vblock_records(),
                                         vd.vblock_records()));
        run.entries.push_back(VRun::Entry{vbs[0], vd.vblock_records()});
        run.n_records += vd.vblock_records();
    }
    std::uint64_t before = 0;
    for (std::uint32_t d = 0; d < 4; ++d) before += disks.free_blocks(d);
    run.release(disks);
    std::uint64_t after = 0;
    for (std::uint32_t d = 0; d < 4; ++d) after += disks.free_blocks(d);
    EXPECT_EQ(after - before, 4u * vd.group_size());
}

} // namespace
} // namespace balsort
