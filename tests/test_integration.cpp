// Cross-module integration tests: file-backed end-to-end sorts, the
// Aggarwal-Vitter (Fig. 1) relaxed model, identical I/O accounting across
// backends, and large mixed scenarios.
#include <gtest/gtest.h>

#include <filesystem>

#include "baselines/greed_sort.hpp"
#include "baselines/striped_merge.hpp"
#include "core/balance_sort.hpp"
#include "core/hier_sort.hpp"
#include "util/workload.hpp"

namespace balsort {
namespace {

TEST(Integration, FileBackedBalanceSortEndToEnd) {
    PdmConfig cfg{.n = 30000, .m = 1024, .d = 8, .b = 16, .p = 2};
    DiskArray disks(cfg.d, cfg.b, DiskBackend::kFile, "/tmp");
    auto input = generate(Workload::kUniform, cfg.n, 2025);
    SortOptions opt;
    opt.balance.check_invariants = true;
    SortReport rep;
    auto sorted = balance_sort_records(disks, input, cfg, opt, &rep);
    EXPECT_TRUE(is_sorted_permutation_of(input, sorted));
    EXPECT_TRUE(rep.balance.invariant2_held);
}

TEST(Integration, FileAndMemoryBackendsCountIdenticalIos) {
    // The I/O-step semantics are backend-independent: a file-backed array
    // must report exactly the same step counts as the in-memory one.
    PdmConfig cfg{.n = 20000, .m = 1024, .d = 4, .b = 16, .p = 1};
    auto input = generate(Workload::kGaussian, cfg.n, 7);
    SortReport mem_rep, file_rep;
    std::vector<Record> mem_out, file_out;
    {
        DiskArray disks(cfg.d, cfg.b, DiskBackend::kMemory);
        mem_out = balance_sort_records(disks, input, cfg, {}, &mem_rep);
    }
    {
        DiskArray disks(cfg.d, cfg.b, DiskBackend::kFile, "/tmp");
        file_out = balance_sort_records(disks, input, cfg, {}, &file_rep);
    }
    EXPECT_EQ(mem_out, file_out);
    EXPECT_EQ(mem_rep.io.io_steps(), file_rep.io.io_steps());
    EXPECT_EQ(mem_rep.io.blocks_read, file_rep.io.blocks_read);
    EXPECT_EQ(mem_rep.io.blocks_written, file_rep.io.blocks_written);
}

TEST(Integration, FileDisksCleanedUpAfterUse) {
    const std::string dir = "/tmp/balsort_cleanup_test";
    std::filesystem::create_directories(dir);
    {
        DiskArray disks(4, 8, DiskBackend::kFile, dir);
        auto recs = generate(Workload::kUniform, 500, 1);
        (void)write_striped(disks, recs);
        EXPECT_FALSE(std::filesystem::is_empty(dir));
    }
    EXPECT_TRUE(std::filesystem::is_empty(dir));
    std::filesystem::remove_all(dir);
}

TEST(Integration, AgvModelNeedsNoMoreIosThanDDiskModel) {
    // Fig. 1 vs Fig. 2a: the [AgV] model is strictly more permissive (any
    // D blocks per step), so the same algorithm can only do better there.
    PdmConfig cfg{.n = 40000, .m = 1024, .d = 8, .b = 8, .p = 1};
    auto input = generate(Workload::kUniform, cfg.n, 55);
    std::uint64_t ddisk_ios, agv_ios;
    {
        DiskArray disks(cfg.d, cfg.b);
        BlockRun run = write_striped(disks, input);
        SortReport rep;
        (void)balance_sort(disks, run, cfg, {}, &rep);
        ddisk_ios = rep.io.io_steps();
    }
    {
        DiskArray disks(cfg.d, cfg.b, DiskBackend::kMemory, ".",
                        Constraint::kAggarwalVitter);
        BlockRun run = write_striped(disks, input);
        SortReport rep;
        auto out = read_run(disks, balance_sort(disks, run, cfg, {}, &rep));
        EXPECT_TRUE(is_sorted_by_key(out));
        agv_ios = rep.io.io_steps();
    }
    EXPECT_LE(agv_ios, ddisk_ios);
}

TEST(Integration, LargeMixedRun) {
    // A bigger end-to-end exercise crossing multiple recursion levels with
    // an adversarial (nearly-sorted) workload and P > 1.
    PdmConfig cfg{.n = 1 << 17, .m = 1 << 11, .d = 8, .b = 16, .p = 4};
    DiskArray disks(cfg.d, cfg.b);
    auto input = generate(Workload::kNearlySorted, cfg.n, 88);
    SortReport rep;
    auto sorted = balance_sort_records(disks, input, cfg, {}, &rep);
    EXPECT_TRUE(is_sorted_permutation_of(input, sorted));
    EXPECT_GE(rep.levels, 3u);
    EXPECT_TRUE(rep.balance.invariant2_held);
    EXPECT_LE(rep.worst_bucket_read_ratio, 2.5);
}

TEST(Integration, SequentialSortsOnSharedArray) {
    // Multiple sorts re-using one disk array must not interfere (bump
    // allocation keeps regions disjoint).
    PdmConfig cfg{.n = 5000, .m = 512, .d = 4, .b = 8, .p = 1};
    DiskArray disks(cfg.d, cfg.b);
    auto in1 = generate(Workload::kUniform, cfg.n, 1);
    auto in2 = generate(Workload::kReverse, cfg.n, 2);
    BlockRun run1 = write_striped(disks, in1);
    BlockRun run2 = write_striped(disks, in2);
    auto out1 = read_run(disks, balance_sort(disks, run1, cfg, {}, nullptr));
    auto out2 = read_run(disks, balance_sort(disks, run2, cfg, {}, nullptr));
    EXPECT_TRUE(is_sorted_permutation_of(in1, out1));
    EXPECT_TRUE(is_sorted_permutation_of(in2, out2));
    // Original inputs still intact after both sorts.
    EXPECT_EQ(read_run(disks, run1), in1);
    EXPECT_EQ(read_run(disks, run2), in2);
}

TEST(Integration, HierarchySortersAgreeWithPdmSorter) {
    auto input = generate(Workload::kZipf, 4000, 99);
    std::vector<Record> expected = input;
    std::stable_sort(expected.begin(), expected.end(), KeyLess{});
    HierSortConfig cfg;
    cfg.h = 16;
    cfg.model = HierModelSpec::hmm(CostFn::log());
    auto sorted = hier_sort(input, cfg, nullptr);
    ASSERT_EQ(sorted.size(), expected.size());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        EXPECT_EQ(sorted[i].key, expected[i].key);
    }
}

TEST(Integration, StressManySmallSorts) {
    // Shake out edge interactions across a grid of tiny instances.
    Xoshiro256 rng(123);
    for (int trial = 0; trial < 30; ++trial) {
        const std::uint32_t d = 1 + static_cast<std::uint32_t>(rng.below(8));
        const std::uint32_t b = 1 + static_cast<std::uint32_t>(rng.below(8));
        const std::uint64_t m =
            std::max<std::uint64_t>(2ull * d * b, 32 + rng.below(256));
        const std::uint64_t n = 1 + rng.below(4000);
        PdmConfig cfg{.n = n, .m = m, .d = d, .b = b, .p = 1};
        DiskArray disks(cfg.d, cfg.b);
        const auto w = all_workloads()[trial % all_workloads().size()];
        auto input = generate(w, n, trial);
        SortOptions opt;
        opt.balance.check_invariants = true;
        auto sorted = balance_sort_records(disks, input, cfg, opt, nullptr);
        ASSERT_TRUE(is_sorted_permutation_of(input, sorted))
            << "trial=" << trial << " n=" << n << " d=" << d << " b=" << b << " m=" << m
            << " w=" << to_string(w);
    }
}

TEST(Integration, BaselinesOnFileBackend) {
    PdmConfig cfg{.n = 10000, .m = 512, .d = 4, .b = 8, .p = 1};
    DiskArray disks(cfg.d, cfg.b, DiskBackend::kFile, "/tmp");
    auto input = generate(Workload::kOrganPipe, cfg.n, 77);
    BlockRun run = write_striped(disks, input);
    auto merge_out = read_run(disks, striped_merge_sort(disks, run, cfg, nullptr));
    EXPECT_TRUE(is_sorted_permutation_of(input, merge_out));
    auto greed_out = read_run(disks, greed_sort(disks, run, cfg, nullptr));
    EXPECT_TRUE(is_sorted_permutation_of(input, greed_out));
}

} // namespace
} // namespace balsort
