// Regression and observability tests for the staged sort pipeline
// (DESIGN.md §10).
//
// The pre-refactor recursive driver (`sort_rec`) no longer exists, so the
// bit-identical-accounting guarantee is pinned by goldens captured from it
// before the refactor: full step-observer sequences (FNV-1a over
// direction, fan-out, and every per-disk block address), output record
// hashes, and the model counters, for representative configurations of
// both entry points. Any change to io_steps(), the observer sequence, the
// block counts, or the sorted output — from the stage split, the buffer
// pool, or cross-bucket staging — fails these tests.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/balance_sort.hpp"
#include "core/hier_sort.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/tracer.hpp"
#include "util/buffer_pool.hpp"
#include "util/workload.hpp"

namespace balsort {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
        h ^= (x >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

struct SortTrace {
    IoStats io;
    std::uint32_t levels = 0;
    std::uint64_t base_cases = 0;
    std::uint32_t s_used = 0;
    std::uint64_t step_hash = kFnvOffset;
    std::uint64_t out_hash = kFnvOffset;
    SortReport report;
};

/// Run one sort while hashing the full parallel-step sequence the array
/// observer sees and the sorted output records.
SortTrace traced_sort(Workload w, const PdmConfig& cfg, const SortOptions& opt,
                      DiskBackend backend) {
    DiskArray disks = backend == DiskBackend::kFile
                          ? DiskArray(cfg.d, cfg.b, DiskBackend::kFile,
                                      std::filesystem::temp_directory_path().string())
                          : DiskArray(cfg.d, cfg.b);
    SortTrace t;
    disks.set_step_observer([&t](bool is_read, std::span<const BlockOp> ops) {
        t.step_hash = fnv1a(t.step_hash, is_read ? 1 : 2);
        t.step_hash = fnv1a(t.step_hash, ops.size());
        for (const auto& op : ops) {
            t.step_hash = fnv1a(t.step_hash, op.disk);
            t.step_hash = fnv1a(t.step_hash, op.block);
        }
    });
    auto input = generate(w, cfg.n, 42);
    auto sorted = balance_sort_records(disks, input, cfg, opt, &t.report);
    for (const Record& r : sorted) {
        t.out_hash = fnv1a(t.out_hash, r.key);
        t.out_hash = fnv1a(t.out_hash, r.payload);
    }
    t.io = t.report.io;
    t.levels = t.report.levels;
    t.base_cases = t.report.base_cases;
    t.s_used = t.report.s_used;
    return t;
}

struct Golden {
    std::uint64_t rs, ws, br, bw;
    std::uint32_t levels;
    std::uint64_t base_cases;
    std::uint32_t s_used;
    std::uint64_t step_hash, out_hash;
};

void expect_matches(const SortTrace& t, const Golden& g) {
    EXPECT_EQ(t.io.read_steps, g.rs);
    EXPECT_EQ(t.io.write_steps, g.ws);
    EXPECT_EQ(t.io.blocks_read, g.br);
    EXPECT_EQ(t.io.blocks_written, g.bw);
    EXPECT_EQ(t.levels, g.levels);
    EXPECT_EQ(t.base_cases, g.base_cases);
    EXPECT_EQ(t.s_used, g.s_used);
    EXPECT_EQ(t.step_hash, g.step_hash);
    EXPECT_EQ(t.out_hash, g.out_hash);
}

// ---------------------------------------------------------------------------
// Goldens captured from the pre-refactor recursive driver (commit 2a5d75e),
// memory backend, input seed 42. Verified stable across repeated runs.
// ---------------------------------------------------------------------------

TEST(PipelineGoldens, DefaultOptionsUniform) {
    PdmConfig cfg{.n = 1 << 14, .m = 1 << 10, .d = 8, .b = 16, .p = 4};
    const Golden g{1327, 749, 10396, 5776, 6, 23, 2,
                   8400640918805680260ull, 9391579865765926199ull};
    expect_matches(traced_sort(Workload::kUniform, cfg, {}, DiskBackend::kMemory), g);
}

TEST(PipelineGoldens, StreamingSketchZipf) {
    PdmConfig cfg{.n = 20000, .m = 1024, .d = 4, .b = 8, .p = 2};
    SortOptions opt;
    opt.pivot_method = PivotMethod::kStreamingSketch;
    const Golden g{3052, 3156, 12142, 9642, 4, 21, 3,
                   2001929164921609248ull, 4489769194646271066ull};
    expect_matches(traced_sort(Workload::kZipf, cfg, opt, DiskBackend::kMemory), g);
}

TEST(PipelineGoldens, SynchronizedWritesReverse) {
    PdmConfig cfg{.n = 12000, .m = 512, .d = 8, .b = 8, .p = 2};
    SortOptions opt;
    opt.synchronized_writes = true;
    const Golden g{2139, 1165, 16748, 9208, 6, 32, 2,
                   15301356196869035716ull, 11783058181912304141ull};
    expect_matches(traced_sort(Workload::kReverse, cfg, opt, DiskBackend::kMemory), g);
}

TEST(PipelineGoldens, HierSortHmmLog) {
    HierSortConfig hc;
    hc.h = 16;
    hc.model = HierModelSpec::hmm(CostFn::log());
    HierSortReport rep;
    auto recs = generate(Workload::kUniform, 4096, 7);
    auto sorted = hier_sort(recs, hc, &rep);
    EXPECT_NEAR(rep.total_time, 34771.655764, 1e-3);
    EXPECT_EQ(rep.tracks, 2742u);
    EXPECT_EQ(rep.mechanics.io.read_steps, 1571u);
    EXPECT_EQ(rep.mechanics.io.write_steps, 1171u);
    std::uint64_t oh = kFnvOffset;
    for (const Record& r : sorted) {
        oh = fnv1a(oh, r.key);
        oh = fnv1a(oh, r.payload);
    }
    EXPECT_EQ(oh, 5414309037085656959ull);
    // Satellite: hier_sort populates elapsed_seconds like balance_sort.
    EXPECT_GT(rep.elapsed_seconds, 0.0);
    EXPECT_GT(rep.mechanics.elapsed_seconds, 0.0);
    EXPECT_LE(rep.mechanics.elapsed_seconds, rep.elapsed_seconds);
}

// ---------------------------------------------------------------------------
// Mode matrix: every combination of backend, engine, pooling, and staging
// must produce identical model quantities, observer sequences, and output.
// ---------------------------------------------------------------------------

TEST(PipelineModes, AccountingIdenticalAcrossAllModes) {
    PdmConfig cfg{.n = 20000, .m = 1024, .d = 4, .b = 8, .p = 2};
    SortOptions ref_opt;
    ref_opt.async_io = AsyncIo::kOff;
    ref_opt.pool_buffers = false;
    ref_opt.cross_bucket_prefetch = false;
    const SortTrace ref = traced_sort(Workload::kUniform, cfg, ref_opt, DiskBackend::kMemory);
    ASSERT_GT(ref.io.io_steps(), 0u);

    for (DiskBackend backend : {DiskBackend::kMemory, DiskBackend::kFile}) {
        for (AsyncIo async : {AsyncIo::kOff, AsyncIo::kOn}) {
            for (bool pool : {false, true}) {
                for (bool stage : {false, true}) {
                    SortOptions opt;
                    opt.async_io = async;
                    opt.pool_buffers = pool;
                    opt.cross_bucket_prefetch = stage;
                    const SortTrace t = traced_sort(Workload::kUniform, cfg, opt, backend);
                    SCOPED_TRACE(std::string(backend == DiskBackend::kFile ? "file" : "mem") +
                                 (async == AsyncIo::kOn ? "+async" : "+sync") +
                                 (pool ? "+pool" : "") + (stage ? "+stage" : ""));
                    EXPECT_EQ(t.io.read_steps, ref.io.read_steps);
                    EXPECT_EQ(t.io.write_steps, ref.io.write_steps);
                    EXPECT_EQ(t.io.blocks_read, ref.io.blocks_read);
                    EXPECT_EQ(t.io.blocks_written, ref.io.blocks_written);
                    EXPECT_EQ(t.levels, ref.levels);
                    EXPECT_EQ(t.base_cases, ref.base_cases);
                    EXPECT_EQ(t.step_hash, ref.step_hash);
                    EXPECT_EQ(t.out_hash, ref.out_hash);
                    EXPECT_EQ(t.report.equal_class_records, ref.report.equal_class_records);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Observability overhead guard (DESIGN.md §11): tracing observes, never
// perturbs. A sort with a tracer and a metrics registry installed must be
// bit-identical — io_steps, the full observer sequence, and the sorted
// output — to the same sort with observability off.
// ---------------------------------------------------------------------------

TEST(ObservabilityGuard, TracingChangesNoModelQuantity) {
    PdmConfig cfg{.n = 20000, .m = 1024, .d = 4, .b = 8, .p = 2};
    const SortTrace plain = traced_sort(Workload::kUniform, cfg, {}, DiskBackend::kMemory);

    Tracer tracer;
    MetricsRegistry metrics;
    SortOptions opt;
    opt.trace = &tracer;
    opt.metrics = &metrics;
    const SortTrace obs = traced_sort(Workload::kUniform, cfg, opt, DiskBackend::kMemory);

    EXPECT_EQ(obs.io.read_steps, plain.io.read_steps);
    EXPECT_EQ(obs.io.write_steps, plain.io.write_steps);
    EXPECT_EQ(obs.io.blocks_read, plain.io.blocks_read);
    EXPECT_EQ(obs.io.blocks_written, plain.io.blocks_written);
    EXPECT_EQ(obs.levels, plain.levels);
    EXPECT_EQ(obs.base_cases, plain.base_cases);
    EXPECT_EQ(obs.s_used, plain.s_used);
    EXPECT_EQ(obs.step_hash, plain.step_hash);
    EXPECT_EQ(obs.out_hash, plain.out_hash);
#ifndef BALSORT_NO_OBS
    // And the instruments really were live, not silently disconnected.
    EXPECT_GT(tracer.event_count(), 0u);
    EXPECT_GT(metrics.histogram("pool.acquire_records").count(), 0u);
#endif
}

// The sampling profiler is the most invasive observer — SIGPROF fires at
// the default rate throughout the sort, interrupting the pipeline at
// arbitrary points — and must still leave every model quantity, the full
// step-observer sequence, and the sorted output byte-identical. This is
// the overhead-guard acceptance test for `balsort_cli --profile`.
TEST(ObservabilityGuard, SamplingProfilerChangesNoModelQuantity) {
    PdmConfig cfg{.n = 20000, .m = 1024, .d = 4, .b = 8, .p = 2};
    const SortTrace plain = traced_sort(Workload::kUniform, cfg, {}, DiskBackend::kMemory);

    Profiler profiler; // default config = the CLI's default rate (997 Hz)
    SortOptions opt;
    opt.profiler = &profiler;
    const SortTrace prof = traced_sort(Workload::kUniform, cfg, opt, DiskBackend::kMemory);

    EXPECT_EQ(prof.io.io_steps(), plain.io.io_steps());
    EXPECT_EQ(prof.io.read_steps, plain.io.read_steps);
    EXPECT_EQ(prof.io.write_steps, plain.io.write_steps);
    EXPECT_EQ(prof.io.blocks_read, plain.io.blocks_read);
    EXPECT_EQ(prof.io.blocks_written, plain.io.blocks_written);
    EXPECT_EQ(prof.report.comparisons, plain.report.comparisons);
    EXPECT_EQ(prof.levels, plain.levels);
    EXPECT_EQ(prof.base_cases, plain.base_cases);
    EXPECT_EQ(prof.s_used, plain.s_used);
    EXPECT_EQ(prof.step_hash, plain.step_hash);
    EXPECT_EQ(prof.out_hash, plain.out_hash);
}

// The balance timeline (DESIGN.md §12) is the same kind of pure observer:
// recording every track's balance-quality sample must leave io_steps, the
// full observer sequence, and the sorted output bit-identical.
TEST(ObservabilityGuard, BalanceTimelineChangesNoModelQuantity) {
    PdmConfig cfg{.n = 20000, .m = 1024, .d = 4, .b = 8, .p = 2};
    const SortTrace plain = traced_sort(Workload::kUniform, cfg, {}, DiskBackend::kMemory);

    BalanceTimeline timeline;
    SortOptions opt;
    opt.balance.timeline = &timeline;
    const SortTrace obs = traced_sort(Workload::kUniform, cfg, opt, DiskBackend::kMemory);

    EXPECT_EQ(obs.io.io_steps(), plain.io.io_steps());
    EXPECT_EQ(obs.io.read_steps, plain.io.read_steps);
    EXPECT_EQ(obs.io.write_steps, plain.io.write_steps);
    EXPECT_EQ(obs.io.blocks_read, plain.io.blocks_read);
    EXPECT_EQ(obs.io.blocks_written, plain.io.blocks_written);
    EXPECT_EQ(obs.levels, plain.levels);
    EXPECT_EQ(obs.base_cases, plain.base_cases);
    EXPECT_EQ(obs.s_used, plain.s_used);
    EXPECT_EQ(obs.step_hash, plain.step_hash);
    EXPECT_EQ(obs.out_hash, plain.out_hash);
    // The recorder really ran: one sample per Balance track.
    EXPECT_FALSE(timeline.tracks.empty());
    EXPECT_EQ(timeline.tracks.size(), obs.report.balance.tracks);
}

// ---------------------------------------------------------------------------
// PhaseProfile
// ---------------------------------------------------------------------------

TEST(PhaseProfileTest, PopulatedForEverySort) {
    PdmConfig cfg{.n = 20000, .m = 1024, .d = 4, .b = 8, .p = 2};
    DiskArray disks(cfg.d, cfg.b);
    auto input = generate(Workload::kUniform, cfg.n, 11);
    SortReport rep;
    balance_sort_records(disks, input, cfg, {}, &rep);
    const PhaseProfile& ph = rep.phases;
    // All four stages ran on a recursing instance.
    EXPECT_GT(ph.pivot_seconds, 0.0);
    EXPECT_GT(ph.balance_seconds, 0.0);
    EXPECT_GT(ph.base_case_seconds, 0.0);
    EXPECT_GT(ph.phase_seconds(), 0.0);
    // Stage intervals are disjoint driver-thread time: their sum (minus
    // engine time hidden under compute) can never exceed the wall clock.
    EXPECT_GT(rep.elapsed_seconds, 0.0);
    EXPECT_GE(rep.elapsed_seconds, ph.phase_seconds() - ph.overlap_hidden_seconds);
    // Memory backend, AsyncIo::kAuto: the engine is off, so no staging.
    EXPECT_EQ(ph.staged_prefetches, 0u);
    EXPECT_EQ(ph.overlap_hidden_seconds, 0.0);
    // Pooling is on by default and the sort recurses, so reuse happened.
    EXPECT_GT(ph.pool_hits + ph.pool_misses, 0u);
    EXPECT_GT(ph.pool_hits, 0u);
    EXPECT_GT(ph.pool_hit_rate(), 0.0);
}

TEST(PhaseProfileTest, PoolCountersZeroWhenPoolingOff) {
    PdmConfig cfg{.n = 5000, .m = 512, .d = 4, .b = 8, .p = 2};
    DiskArray disks(cfg.d, cfg.b);
    auto input = generate(Workload::kUniform, cfg.n, 12);
    SortOptions opt;
    opt.pool_buffers = false;
    SortReport rep;
    balance_sort_records(disks, input, cfg, opt, &rep);
    EXPECT_EQ(rep.phases.pool_hits, 0u);
    EXPECT_EQ(rep.phases.pool_misses, 0u);
    EXPECT_EQ(rep.phases.pool_hit_rate(), 0.0);
}

// ---------------------------------------------------------------------------
// Cross-bucket staging
// ---------------------------------------------------------------------------

TEST(CrossBucketStaging, EngagesOnAsyncBackend) {
    PdmConfig cfg{.n = 20000, .m = 1024, .d = 4, .b = 8, .p = 2};
    DiskArray disks(cfg.d, cfg.b, DiskBackend::kFile,
                    std::filesystem::temp_directory_path().string());
    auto input = generate(Workload::kUniform, cfg.n, 13);
    SortReport rep;
    balance_sort_records(disks, input, cfg, {}, &rep); // kAuto -> engine on
    EXPECT_GT(rep.phases.staged_prefetches, 0u);
    EXPECT_GT(rep.io.prefetch_block_ops, 0u);
    EXPECT_GT(rep.io.async_block_ops, 0u);
}

TEST(CrossBucketStaging, DisabledByOption) {
    PdmConfig cfg{.n = 20000, .m = 1024, .d = 4, .b = 8, .p = 2};
    DiskArray disks(cfg.d, cfg.b, DiskBackend::kFile,
                    std::filesystem::temp_directory_path().string());
    auto input = generate(Workload::kUniform, cfg.n, 13);
    SortOptions opt;
    opt.cross_bucket_prefetch = false;
    SortReport rep;
    balance_sort_records(disks, input, cfg, opt, &rep);
    EXPECT_EQ(rep.phases.staged_prefetches, 0u);
    EXPECT_EQ(rep.phases.overlap_hidden_seconds, 0.0);
    // Intra-run double buffering (DESIGN.md §9) still prefetches.
    EXPECT_GT(rep.io.prefetch_block_ops, 0u);
}

TEST(CrossBucketStaging, NoOpWithoutEngine) {
    PdmConfig cfg{.n = 20000, .m = 1024, .d = 4, .b = 8, .p = 2};
    DiskArray disks(cfg.d, cfg.b); // memory backend, kAuto -> engine off
    auto input = generate(Workload::kUniform, cfg.n, 13);
    SortReport rep;
    balance_sort_records(disks, input, cfg, {}, &rep);
    EXPECT_EQ(rep.phases.staged_prefetches, 0u);
    EXPECT_EQ(rep.io.prefetch_block_ops, 0u);
}

// ---------------------------------------------------------------------------
// Crash consistency (DESIGN.md §13): a sort interrupted at ANY durable
// boundary and resumed from the checkpoint must be indistinguishable from
// an uninterrupted checkpointing run — the same observer-step sequence
// (hashed across both generations), the same output bytes, the same model
// accounting, and the same cumulative checkpoint count. And checkpointing
// itself must leave every model quantity of a plain run untouched (only
// the physical placement of recycled blocks may move, because releases
// are quarantined between boundaries).
// ---------------------------------------------------------------------------

struct Crash {};

struct CkTrace {
    std::uint64_t step_hash = kFnvOffset;
    std::uint64_t out_hash = kFnvOffset;
    SortReport report;
};

/// One checkpointing sort on a single live array: optionally crash (throw)
/// at boundary `crash_at`, then resume from the checkpoint on the same
/// array. The observer hash accumulates across both generations.
CkTrace checkpointed_sort(const PdmConfig& cfg, const SortOptions& base_opt,
                          DiskBackend backend, const std::string& path,
                          std::uint64_t crash_at) {
    DiskArray disks = backend == DiskBackend::kFile
                          ? DiskArray(cfg.d, cfg.b, DiskBackend::kFile,
                                      std::filesystem::temp_directory_path().string())
                          : DiskArray(cfg.d, cfg.b);
    CkTrace t;
    disks.set_step_observer([&t](bool is_read, std::span<const BlockOp> ops) {
        t.step_hash = fnv1a(t.step_hash, is_read ? 1 : 2);
        t.step_hash = fnv1a(t.step_hash, ops.size());
        for (const auto& op : ops) {
            t.step_hash = fnv1a(t.step_hash, op.disk);
            t.step_hash = fnv1a(t.step_hash, op.block);
        }
    });
    auto records = generate(Workload::kUniform, cfg.n, 42);
    const BlockRun input = write_striped(disks, records);
    SortOptions opt = base_opt;
    opt.checkpoint_path = path;
    BlockRun out;
    bool crashed = false;
    if (crash_at != 0) {
        opt.on_checkpoint = [crash_at](std::uint64_t seq) {
            if (seq == crash_at) throw Crash{};
        };
    }
    try {
        out = balance_sort(disks, input, cfg, opt, &t.report);
    } catch (const Crash&) {
        crashed = true;
    }
    if (crashed) {
        opt.on_checkpoint = nullptr;
        opt.resume_from = path;
        out = balance_sort(disks, input, cfg, opt, &t.report);
    }
    for (const Record& r : read_run(disks, out)) {
        t.out_hash = fnv1a(t.out_hash, r.key);
        t.out_hash = fnv1a(t.out_hash, r.payload);
    }
    std::filesystem::remove(path);
    return t;
}

void expect_resume_equals_fresh(const CkTrace& t, const CkTrace& fresh,
                                std::uint64_t total_boundaries) {
    EXPECT_EQ(t.step_hash, fresh.step_hash);
    EXPECT_EQ(t.out_hash, fresh.out_hash);
    EXPECT_EQ(t.report.io.read_steps, fresh.report.io.read_steps);
    EXPECT_EQ(t.report.io.write_steps, fresh.report.io.write_steps);
    EXPECT_EQ(t.report.io.blocks_read, fresh.report.io.blocks_read);
    EXPECT_EQ(t.report.io.blocks_written, fresh.report.io.blocks_written);
    EXPECT_EQ(t.report.comparisons, fresh.report.comparisons);
    EXPECT_EQ(t.report.pram_time, fresh.report.pram_time);
    EXPECT_EQ(t.report.levels, fresh.report.levels);
    EXPECT_EQ(t.report.base_cases, fresh.report.base_cases);
    EXPECT_EQ(t.report.equal_class_records, fresh.report.equal_class_records);
    // Seq is cumulative across the crash: the k-th logical boundary writes
    // seq k whether or not a crash intervened.
    EXPECT_EQ(t.report.checkpoints_written, total_boundaries);
    EXPECT_EQ(t.report.resumes, 1u);
}

TEST(CrashConsistency, ResumeEqualsFreshAtEveryBoundaryMemory) {
    const PdmConfig cfg{.n = 4000, .m = 512, .d = 4, .b = 8, .p = 2};
    for (AsyncIo async : {AsyncIo::kOff, AsyncIo::kOn}) {
        SortOptions opt;
        opt.async_io = async;
        const std::string path =
            (std::filesystem::temp_directory_path() /
             (std::string("balsort_resume_mem_") + (async == AsyncIo::kOn ? "async" : "sync") +
              ".ck"))
                .string();
        const CkTrace fresh = checkpointed_sort(cfg, opt, DiskBackend::kMemory, path, 0);
        const std::uint64_t k_total = fresh.report.checkpoints_written;
        ASSERT_GT(k_total, 4u) << "config too small to exercise boundaries";
        EXPECT_EQ(fresh.report.resumes, 0u);

        // Checkpointing changes no model quantity of the plain run.
        const SortTrace plain = traced_sort(Workload::kUniform, cfg, opt, DiskBackend::kMemory);
        EXPECT_EQ(fresh.report.io.read_steps, plain.io.read_steps);
        EXPECT_EQ(fresh.report.io.write_steps, plain.io.write_steps);
        EXPECT_EQ(fresh.report.io.blocks_read, plain.io.blocks_read);
        EXPECT_EQ(fresh.report.io.blocks_written, plain.io.blocks_written);
        EXPECT_EQ(fresh.out_hash, plain.out_hash);

        for (std::uint64_t k = 1; k <= k_total; ++k) {
            SCOPED_TRACE("crash at boundary " + std::to_string(k) + "/" +
                         std::to_string(k_total) +
                         (async == AsyncIo::kOn ? " (async)" : " (sync)"));
            const CkTrace t = checkpointed_sort(cfg, opt, DiskBackend::kMemory, path, k);
            expect_resume_equals_fresh(t, fresh, k_total);
        }
    }
}

TEST(CrashConsistency, ResumeEqualsFreshFileBackend) {
    const PdmConfig cfg{.n = 4000, .m = 512, .d = 4, .b = 8, .p = 2};
    for (AsyncIo async : {AsyncIo::kOff, AsyncIo::kOn}) {
        SortOptions opt;
        opt.async_io = async;
        const std::string path =
            (std::filesystem::temp_directory_path() /
             (std::string("balsort_resume_file_") + (async == AsyncIo::kOn ? "async" : "sync") +
              ".ck"))
                .string();
        const CkTrace fresh = checkpointed_sort(cfg, opt, DiskBackend::kFile, path, 0);
        const std::uint64_t k_total = fresh.report.checkpoints_written;
        ASSERT_GT(k_total, 4u);
        for (std::uint64_t k : {std::uint64_t{1}, k_total / 2, k_total}) {
            SCOPED_TRACE("crash at boundary " + std::to_string(k) + "/" +
                         std::to_string(k_total) +
                         (async == AsyncIo::kOn ? " (async)" : " (sync)"));
            const CkTrace t = checkpointed_sort(cfg, opt, DiskBackend::kFile, path, k);
            expect_resume_equals_fresh(t, fresh, k_total);
        }
    }
}

// Synchronized-writes mode goes through a different emit path; one crash
// point suffices to pin the resume contract there too.
TEST(CrashConsistency, ResumeEqualsFreshSynchronizedWrites) {
    const PdmConfig cfg{.n = 4000, .m = 512, .d = 4, .b = 8, .p = 2};
    SortOptions opt;
    opt.synchronized_writes = true;
    const std::string path =
        (std::filesystem::temp_directory_path() / "balsort_resume_syncw.ck").string();
    const CkTrace fresh = checkpointed_sort(cfg, opt, DiskBackend::kMemory, path, 0);
    const std::uint64_t k_total = fresh.report.checkpoints_written;
    ASSERT_GT(k_total, 2u);
    const CkTrace t = checkpointed_sort(cfg, opt, DiskBackend::kMemory, path, k_total / 2);
    expect_resume_equals_fresh(t, fresh, k_total);
}

// hier_sort resumes with a brand-new internal lanes array: the memory
// backend's block images travel inside the checkpoint record, so the
// resumed call restores them before replaying. The PDM model quantities
// must match the uninterrupted run; the charged hierarchy_time reflects
// only post-resume lane traffic (documented caveat).
TEST(CrashConsistency, HierSortResumesOnFreshLanes) {
    const std::string path =
        (std::filesystem::temp_directory_path() / "balsort_resume_hier.ck").string();
    HierSortConfig hc;
    hc.h = 16;
    hc.model = HierModelSpec::hmm(CostFn::log());
    hc.checkpoint_path = path;
    auto recs = generate(Workload::kUniform, 4096, 7);

    HierSortReport fresh_rep;
    const auto fresh = hier_sort(recs, hc, &fresh_rep);
    const std::uint64_t k_total = fresh_rep.mechanics.checkpoints_written;
    ASSERT_GT(k_total, 2u);

    hc.on_checkpoint = [k_total](std::uint64_t seq) {
        if (seq == k_total / 2) throw Crash{};
    };
    EXPECT_THROW(hier_sort(recs, hc, nullptr), Crash);

    hc.on_checkpoint = nullptr;
    hc.resume_from = path;
    HierSortReport rep;
    const auto resumed = hier_sort(recs, hc, &rep);
    EXPECT_EQ(resumed, fresh);
    EXPECT_EQ(rep.mechanics.io.read_steps, fresh_rep.mechanics.io.read_steps);
    EXPECT_EQ(rep.mechanics.io.write_steps, fresh_rep.mechanics.io.write_steps);
    EXPECT_EQ(rep.mechanics.io.blocks_read, fresh_rep.mechanics.io.blocks_read);
    EXPECT_EQ(rep.mechanics.io.blocks_written, fresh_rep.mechanics.io.blocks_written);
    EXPECT_EQ(rep.mechanics.checkpoints_written, k_total);
    EXPECT_EQ(rep.mechanics.resumes, 1u);
    // The lane meter is observer-driven and restarts on resume, so its
    // track count covers only the post-resume traffic (the caveat
    // documented on HierSortConfig::checkpoint_path).
    EXPECT_GT(rep.tracks, 0u);
    EXPECT_LT(rep.tracks, fresh_rep.tracks);
    std::filesystem::remove(path);
}

// A checkpoint from one configuration must be rejected by another: the
// config echo guards against resuming into a different geometry.
TEST(CrashConsistency, ResumeRejectsMismatchedConfiguration) {
    const PdmConfig cfg{.n = 4000, .m = 512, .d = 4, .b = 8, .p = 2};
    const std::string path =
        (std::filesystem::temp_directory_path() / "balsort_resume_mismatch.ck").string();
    DiskArray disks(cfg.d, cfg.b);
    auto records = generate(Workload::kUniform, cfg.n, 42);
    const BlockRun input = write_striped(disks, records);
    SortOptions opt;
    opt.checkpoint_path = path;
    opt.on_checkpoint = [](std::uint64_t seq) {
        if (seq == 2) throw Crash{};
    };
    EXPECT_THROW(balance_sort(disks, input, cfg, opt), Crash);

    opt.on_checkpoint = nullptr;
    opt.resume_from = path;
    PdmConfig other = cfg;
    other.m = 1024; // different memory capacity
    EXPECT_THROW(balance_sort(disks, input, other, opt), std::invalid_argument);
    // resume_from without checkpoint_path is rejected up front.
    SortOptions no_ck;
    no_ck.resume_from = path;
    EXPECT_THROW(balance_sort(disks, input, cfg, no_ck), std::invalid_argument);
    std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

TEST(BufferPoolTest, RecyclesCapacity) {
    BufferPool pool;
    {
        auto a = pool.acquire(100);
        EXPECT_EQ(a->size(), 100u);
    }
    auto s = pool.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 0u);
    EXPECT_GE(s.retained_records, 100u);
    EXPECT_GE(s.high_water_records, 100u);
    {
        auto b = pool.acquire(50); // served from the retained buffer
        EXPECT_EQ(b->size(), 50u);
    }
    s = pool.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
}

TEST(BufferPoolTest, CapDropsReturns) {
    BufferPool pool(/*max_retained_records=*/10);
    { auto a = pool.acquire(100); }
    const auto s = pool.stats();
    EXPECT_EQ(s.dropped, 1u);
    EXPECT_EQ(s.retained_records, 0u);
}

TEST(BufferPoolTest, UnpooledFallback) {
    auto lease = BufferPool::acquire_from(nullptr, 64);
    EXPECT_EQ(lease->size(), 64u);
    lease->at(0) = Record{1, 2};
    // Destruction of an unpooled lease must not touch any pool.
}

TEST(BufferPoolTest, LeaseMoveTransfersOwnership) {
    BufferPool pool;
    auto a = pool.acquire(32);
    auto* data = a->data();
    BufferPool::Lease b = std::move(a);
    EXPECT_EQ(b->data(), data);
    EXPECT_EQ(b->size(), 32u);
    b = BufferPool::Lease{}; // early return to the pool
    const auto s = pool.stats();
    EXPECT_GE(s.retained_records, 32u);
}

TEST(BufferPoolTest, PicksSmallestSufficientBuffer) {
    BufferPool pool;
    { auto a = pool.acquire(1000); }
    { auto b = pool.acquire(100); } // recycles the 1000-cap buffer
    {
        // Both retained: 1000-cap and (the shrunk-but-capacity-1000) — the
        // pool tracks capacity, so just assert hits keep happening.
        auto c = pool.acquire(500);
        const auto s = pool.stats();
        EXPECT_EQ(s.misses, 1u);
        EXPECT_EQ(s.hits, 2u);
    }
}

} // namespace
} // namespace balsort
