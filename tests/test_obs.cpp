// Tests for the observability layer (DESIGN.md §11): the span tracer and
// its Chrome trace_event export, the metrics registry (counters, gauges,
// log-scale histograms), the install guards, run manifests, and the
// end-to-end acceptance run: a D = 8 file-backed sort whose trace contains
// phase spans, per-disk engine op spans, and prefetch async pairs, and
// whose metrics snapshot carries per-disk latency histograms.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>

#include "core/balance_sort.hpp"
#include "obs/bench_result.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/run_manifest.hpp"
#include "obs/tracer.hpp"
#include "util/workload.hpp"

namespace balsort {
namespace {

// Minimal recursive-descent JSON syntax checker — enough to assert the
// exporters emit well-formed documents (CI additionally runs them through
// `python3 -m json.tool`).
class JsonChecker {
public:
    explicit JsonChecker(std::string_view s) : s_(s) {}
    bool valid() {
        skip_ws();
        if (!value()) return false;
        skip_ws();
        return pos_ == s_.size();
    }

private:
    std::string_view s_;
    std::size_t pos_ = 0;

    void skip_ws() {
        while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                    s_[pos_] == '\r')) {
            ++pos_;
        }
    }
    bool eat(char c) {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }
    bool literal(std::string_view lit) {
        if (s_.substr(pos_, lit.size()) == lit) {
            pos_ += lit.size();
            return true;
        }
        return false;
    }
    bool string() {
        if (!eat('"')) return false;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                if (pos_ + 1 >= s_.size()) return false;
                pos_ += 2;
            } else {
                ++pos_;
            }
        }
        return eat('"');
    }
    bool number() {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }
    bool object() {
        if (!eat('{')) return false;
        skip_ws();
        if (eat('}')) return true;
        while (true) {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (!eat(':')) return false;
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (eat('}')) return true;
            if (!eat(',')) return false;
        }
    }
    bool array() {
        if (!eat('[')) return false;
        skip_ws();
        if (eat(']')) return true;
        while (true) {
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (eat(']')) return true;
            if (!eat(',')) return false;
        }
    }
    bool value() {
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
            case '{': return object();
            case '[': return array();
            case '"': return string();
            case 't': return literal("true");
            case 'f': return literal("false");
            case 'n': return literal("null");
            default: return number();
        }
    }
};

bool contains(const std::string& hay, std::string_view needle) {
    return hay.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(TracerTest, ExportsAllEventKindsAsValidJson) {
    Tracer t;
    const std::uint32_t lane = t.lane("phase:test");
    {
        Span s(&t, "work", "phase", lane);
        s.arg("bucket", 3);
        s.arg("records", 1000);
    }
    t.instant("transient_retry", "fault", t.lane("faults"), {{"disk", 2}});
    const std::uint64_t id = t.next_async_id();
    t.async_begin("prefetch", "prefetch", id, t.lane("prefetch"), {{"blocks", 8}});
    t.async_end("prefetch", "prefetch", id, t.lane("prefetch"));
    EXPECT_EQ(t.event_count(), 4u);

    std::ostringstream os;
    t.write_chrome_trace(os);
    const std::string json = os.str();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_TRUE(contains(json, "\"traceEvents\""));
    EXPECT_TRUE(contains(json, "\"ph\":\"X\""));
    EXPECT_TRUE(contains(json, "\"ph\":\"i\""));
    EXPECT_TRUE(contains(json, "\"ph\":\"b\""));
    EXPECT_TRUE(contains(json, "\"ph\":\"e\""));
    EXPECT_TRUE(contains(json, "\"bucket\":3"));
    EXPECT_TRUE(contains(json, "\"records\":1000"));
    // Lanes are labelled via thread_name metadata events.
    EXPECT_TRUE(contains(json, "thread_name"));
    EXPECT_TRUE(contains(json, "phase:test"));
}

TEST(TracerTest, LanesAreIdempotentAndDistinct) {
    Tracer t;
    const std::uint32_t a = t.lane("alpha");
    const std::uint32_t b = t.lane("beta");
    EXPECT_NE(a, b);
    EXPECT_EQ(t.lane("alpha"), a);
    EXPECT_EQ(t.lane("beta"), b);
    EXPECT_GE(a, 1000u); // synthetic rows live above real-thread rows
}

TEST(TracerTest, PerThreadBuffersMergeOnExport) {
    Tracer t;
    auto emit_some = [&t](int n) {
        for (int i = 0; i < n; ++i) Span s(&t, "tick", "test");
    };
    std::thread w1(emit_some, 5), w2(emit_some, 7);
    emit_some(3);
    w1.join();
    w2.join();
    EXPECT_EQ(t.event_count(), 15u);
    std::ostringstream os;
    t.write_chrome_trace(os);
    EXPECT_TRUE(JsonChecker(os.str()).valid());
}

TEST(TracerTest, NullTracerSpanIsNoOp) {
    Span s(nullptr, "nothing", "test");
    s.arg("ignored", 1); // must not crash
    EXPECT_EQ(tracer(), nullptr); // nothing installed by default
}

TEST(TracerTest, InstallGuardPublishesAndRestores) {
    ASSERT_EQ(tracer(), nullptr);
    Tracer outer;
    {
        TracerInstallGuard g(&outer);
        EXPECT_EQ(tracer(), &outer);
        {
            // Null guard: a no-op that leaves the ambient install visible.
            TracerInstallGuard noop(nullptr);
            EXPECT_EQ(tracer(), &outer);
        }
        EXPECT_EQ(tracer(), &outer);
        Tracer inner;
        {
            TracerInstallGuard g2(&inner);
            EXPECT_EQ(tracer(), &inner);
        }
        EXPECT_EQ(tracer(), &outer);
    }
    EXPECT_EQ(tracer(), nullptr);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketMath) {
    EXPECT_EQ(Histogram::bucket_of(0), 0);
    EXPECT_EQ(Histogram::bucket_of(1), 1);
    EXPECT_EQ(Histogram::bucket_of(2), 2);
    EXPECT_EQ(Histogram::bucket_of(3), 2);
    EXPECT_EQ(Histogram::bucket_of(4), 3);
    EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64);
    EXPECT_EQ(Histogram::bucket_upper_bound(0), 0u);
    EXPECT_EQ(Histogram::bucket_upper_bound(1), 1u);
    EXPECT_EQ(Histogram::bucket_upper_bound(2), 3u);
    EXPECT_EQ(Histogram::bucket_upper_bound(64), ~std::uint64_t{0});
}

TEST(HistogramTest, RecordAndSummaries) {
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 100ull}) h.record(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 106u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 106.0 / 5.0);
    EXPECT_EQ(h.bucket_count(0), 1u); // the 0
    EXPECT_EQ(h.bucket_count(2), 2u); // 2 and 3
    // p50 of {0,1,2,3,100}: the 3rd sample (2) -> bucket [2,3] upper bound.
    EXPECT_EQ(h.percentile_upper_bound(50), 3u);
    // p100 lands in 100's bucket [64,127].
    EXPECT_EQ(h.percentile_upper_bound(100), 127u);
    EXPECT_EQ(h.percentile_upper_bound(0), 0u);
}

TEST(MetricsRegistryTest, InstrumentsAreStableAndSnapshotIsValidJson) {
    MetricsRegistry reg;
    Counter& c = reg.counter("ops");
    c.add(41);
    reg.counter("ops").add(1); // same instrument
    EXPECT_EQ(c.value(), 42u);
    reg.gauge("depth").set(-7);
    reg.histogram("lat_us").record(150);

    const std::string json = reg.to_json();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_TRUE(contains(json, "\"counters\""));
    EXPECT_TRUE(contains(json, "\"ops\":42"));
    EXPECT_TRUE(contains(json, "\"depth\":-7"));
    EXPECT_TRUE(contains(json, "\"lat_us\""));
    EXPECT_TRUE(contains(json, "\"count\":1"));
    EXPECT_TRUE(contains(json, "\"buckets\""));
}

TEST(MetricsRegistryTest, InstallGuardPublishesAndRestores) {
    ASSERT_EQ(metrics(), nullptr);
    MetricsRegistry reg;
    {
        MetricsInstallGuard g(&reg);
        EXPECT_EQ(metrics(), &reg);
        {
            MetricsInstallGuard noop(nullptr);
            EXPECT_EQ(metrics(), &reg);
        }
        EXPECT_EQ(metrics(), &reg);
    }
    EXPECT_EQ(metrics(), nullptr);
}

// ---------------------------------------------------------------------------
// RunManifest
// ---------------------------------------------------------------------------

TEST(RunManifestTest, BundlesConfigReportAndMetrics) {
    MetricsRegistry reg;
    reg.counter("pool.hits").add(9);
    RunManifest man;
    man.tool = "test";
    man.algo = "balance";
    man.cfg = PdmConfig{.n = 4096, .m = 512, .d = 4, .b = 16, .p = 2};
    man.report.io.read_steps = 10;
    man.report.io.write_steps = 5;
    man.report.levels = 2;
    man.metrics = &reg;

    const std::string json = man.to_json();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    for (const char* key : {"\"tool\":\"test\"", "\"algo\":\"balance\"", "\"config\"", "\"io\"",
                            "\"report\"", "\"phases\"", "\"balance\"", "\"metrics\"",
                            "\"pool.hits\":9"}) {
        EXPECT_TRUE(contains(json, key)) << key;
    }
    // Without a registry the metrics section is omitted, still valid JSON.
    man.metrics = nullptr;
    const std::string bare = man.to_json();
    EXPECT_TRUE(JsonChecker(bare).valid()) << bare;
    EXPECT_FALSE(contains(bare, "\"metrics\""));
}

// ---------------------------------------------------------------------------
// Shared JSON plumbing (obs/json.hpp): escaping and the DOM parser.
// ---------------------------------------------------------------------------

std::string escaped(std::string_view s) {
    std::ostringstream os;
    write_json_escaped(os, s);
    return os.str();
}

TEST(JsonEscapeTest, QuotesBackslashesAndControlChars) {
    EXPECT_EQ(escaped("plain"), "plain");
    EXPECT_EQ(escaped("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(escaped("C:\\tmp\\x"), "C:\\\\tmp\\\\x");
    EXPECT_EQ(escaped(std::string_view("\x01\n\x1f", 3)), "\\u0001\\u000a\\u001f");
    // Embedded in a document, the result must parse back to the original.
    const std::string nasty = "a\"b\\c\nd\te\x02";
    const std::string doc = "{\"k\":\"" + escaped(nasty) + "\"}";
    auto v = JsonValue::parse(doc);
    ASSERT_TRUE(v.has_value()) << doc;
    ASSERT_NE(v->find("k"), nullptr);
    EXPECT_EQ(v->find("k")->as_string(), nasty);
}

TEST(JsonValueTest, ParsesScalarsArraysObjects) {
    auto v = JsonValue::parse(R"({"a":1,"b":-2.5,"c":"s","d":[true,false,null],"e":{"f":3}})");
    ASSERT_TRUE(v.has_value());
    ASSERT_TRUE(v->is_object());
    EXPECT_EQ(v->find("a")->as_double(), 1.0);
    EXPECT_EQ(v->find("a")->raw_number(), "1");
    EXPECT_EQ(v->find("b")->as_double(), -2.5);
    EXPECT_EQ(v->find("b")->raw_number(), "-2.5");
    EXPECT_EQ(v->find("c")->as_string(), "s");
    ASSERT_TRUE(v->find("d")->is_array());
    ASSERT_EQ(v->find("d")->items().size(), 3u);
    EXPECT_TRUE(v->find("d")->items()[0].as_bool());
    EXPECT_EQ(v->find("d")->items()[2].kind(), JsonValue::Kind::kNull);
    ASSERT_TRUE(v->find("e")->is_object());
    EXPECT_EQ(v->find("e")->find("f")->raw_number(), "3");
    EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(JsonValueTest, RejectsMalformedDocuments) {
    for (const char* bad : {"", "{", "[1,", "{\"a\":}", "{\"a\":1,}", "tru", "1 2",
                            "{\"a\" 1}", "\"unterminated", "[1] trailing"}) {
        EXPECT_FALSE(JsonValue::parse(bad).has_value()) << bad;
    }
}

TEST(JsonValueTest, RawNumberTokensSurviveVerbatim) {
    // The byte-exact channel benchgate relies on: tokens are preserved
    // exactly as written, even when they denote the same double.
    auto v = JsonValue::parse(R"([1327, 1327.0, 1.327e3, 0.25])");
    ASSERT_TRUE(v.has_value());
    const auto& xs = v->items();
    ASSERT_EQ(xs.size(), 4u);
    EXPECT_EQ(xs[0].raw_number(), "1327");
    EXPECT_EQ(xs[1].raw_number(), "1327.0");
    EXPECT_EQ(xs[2].raw_number(), "1.327e3");
    EXPECT_EQ(xs[3].raw_number(), "0.25");
    EXPECT_EQ(xs[0].as_double(), xs[1].as_double());
}

TEST(JsonDoubleTest, DeterministicShortestRoundTrip) {
    auto emit = [](double d) {
        std::ostringstream os;
        write_json_double(os, d);
        return os.str();
    };
    EXPECT_EQ(emit(0.25), "0.25");
    EXPECT_EQ(emit(0), "0");
    EXPECT_EQ(emit(-3), "-3");
    EXPECT_EQ(emit(222860), "222860"); // integer-valued doubles print as ints
    const double pi = 3.141592653589793;
    const std::string s = emit(pi);
    EXPECT_EQ(std::stod(s), pi); // round-trips exactly
    EXPECT_EQ(emit(pi), s);      // and deterministically
}

// ---------------------------------------------------------------------------
// Escaping end-to-end: hostile strings through the real emitters.
// ---------------------------------------------------------------------------

TEST(RunManifestTest, EscapesHostileToolAndAlgoNames) {
    RunManifest man;
    man.tool = "tool \"v1\"\\bin";
    man.algo = "bal\nance\x01";
    man.cfg = PdmConfig{.n = 1024, .m = 256, .d = 2, .b = 16, .p = 1};
    const std::string json = man.to_json();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    auto v = JsonValue::parse(json);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->find("tool")->as_string(), man.tool);
    EXPECT_EQ(v->find("algo")->as_string(), man.algo);
}

TEST(MetricsRegistryTest, EscapesHostileInstrumentNames) {
    MetricsRegistry reg;
    reg.counter("ops \"quoted\"").add(1);
    reg.gauge("path\\depth").set(2);
    reg.histogram("lat\nus").record(3);
    const std::string json = reg.to_json();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    auto v = JsonValue::parse(json);
    ASSERT_TRUE(v.has_value());
    ASSERT_NE(v->find("counters"), nullptr);
    EXPECT_NE(v->find("counters")->find("ops \"quoted\""), nullptr);
    EXPECT_NE(v->find("gauges")->find("path\\depth"), nullptr);
    EXPECT_NE(v->find("histograms")->find("lat\nus"), nullptr);
}

// ---------------------------------------------------------------------------
// Canonical bench schema (obs/bench_result.hpp).
// ---------------------------------------------------------------------------

TEST(BenchResultTest, SuiteEmitsSchemaAndParsesBack) {
    BenchSuite suite;
    suite.bench = "unit";
    suite.git_describe = "v1-2-gdeadbee \"dirty\"";
    suite.timestamp = "2026-08-05T00:00:00Z";
    suite.smoke = true;

    SortReport rep;
    rep.io.read_steps = 70;
    rep.io.write_steps = 57;
    rep.io.blocks_read = 560;
    rep.io.blocks_written = 456;
    rep.pram_time = 222860;
    rep.work_ratio = 1.75;
    rep.balance.invariant1_held = true;
    rep.balance.invariant2_held = false;
    PdmConfig cfg{.n = 4096, .m = 512, .d = 4, .b = 16, .p = 2};
    suite.results.push_back(BenchResult::from_report("unit", "defaults", cfg, rep, 0.125));

    const std::string json = suite.to_json();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    auto v = JsonValue::parse(json);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->find("schema")->as_string(), "balsort-bench-v1");
    EXPECT_EQ(v->find("bench")->as_string(), "unit");
    EXPECT_EQ(v->find("git_describe")->as_string(), suite.git_describe);
    ASSERT_TRUE(v->find("results")->is_array());
    ASSERT_EQ(v->find("results")->items().size(), 1u);
    const JsonValue& row = v->find("results")->items()[0];
    EXPECT_EQ(row.find("variant")->as_string(), "defaults");
    const JsonValue* model = row.find("model");
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->find("io_steps")->raw_number(), "127");
    EXPECT_EQ(model->find("read_steps")->raw_number(), "70");
    EXPECT_EQ(model->find("write_steps")->raw_number(), "57");
    EXPECT_EQ(model->find("blocks")->raw_number(), "1016");
    EXPECT_EQ(model->find("pram_time")->raw_number(), "222860");
    EXPECT_EQ(model->find("work_ratio")->raw_number(), "1.75");
    EXPECT_TRUE(row.find("invariants")->find("invariant1")->as_bool());
    EXPECT_FALSE(row.find("invariants")->find("invariant2")->as_bool());
    EXPECT_EQ(row.find("config")->find("d")->raw_number(), "4");
    EXPECT_EQ(row.find("wall_seconds")->as_double(), 0.125);
}

// ---------------------------------------------------------------------------
// Balance timeline (core/balance.hpp recorder + manifest embedding).
// ---------------------------------------------------------------------------

TEST(BalanceTimelineTest, RecordsEveryTrackOnFileBackedSort) {
    PdmConfig cfg{.n = 1 << 14, .m = 1 << 10, .d = 8, .b = 16, .p = 2};
    DiskArray disks(cfg.d, cfg.b, DiskBackend::kFile,
                    std::filesystem::temp_directory_path().string());
    auto input = generate(Workload::kZipf, cfg.n, 11);

    MetricsRegistry metrics_reg;
    BalanceTimeline timeline;
    SortOptions opt;
    opt.balance.timeline = &timeline;
    opt.balance.check_invariants = true;
    SortReport rep;
    {
        MetricsInstallGuard mg(&metrics_reg);
        auto sorted = balance_sort_records(disks, input, cfg, opt, &rep);
        ASSERT_TRUE(is_sorted_permutation_of(input, sorted));
    }

    // Every Balance pass contributed tracks, and the totals reconcile with
    // the aggregate BalanceStats.
    ASSERT_FALSE(timeline.tracks.empty());
    EXPECT_GT(timeline.passes, 0u);
    EXPECT_EQ(timeline.tracks.size(), rep.balance.tracks);
    std::uint64_t direct = 0, matched = 0, deferred = 0, rounds = 0;
    for (const BalanceTrackSample& t : timeline.tracks) {
        // Invariant 2 held (checked above), so its observable never exceeds 1.
        EXPECT_LE(t.max_a, 1u);
        EXPECT_LT(t.pass, timeline.passes);
        direct += t.direct;
        matched += t.matched;
        deferred += t.deferred;
        rounds += t.rounds;
    }
    EXPECT_EQ(direct, rep.balance.direct_blocks);
    EXPECT_EQ(matched, rep.balance.matched_blocks);
    EXPECT_EQ(deferred, rep.balance.deferred_blocks);
    EXPECT_EQ(rounds, rep.balance.rearrange_rounds);

    // The JSON dump is valid and self-describing.
    const std::string json = timeline.to_json();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    auto v = JsonValue::parse(json);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->find("tracks")->items().size(), timeline.tracks.size());

    // The manifest embeds it under "balance_timeline".
    RunManifest man;
    man.tool = "test";
    man.algo = "balance";
    man.cfg = cfg;
    man.report = rep;
    man.timeline = &timeline;
    const std::string mjson = man.to_json();
    EXPECT_TRUE(JsonChecker(mjson).valid()) << mjson;
    auto mv = JsonValue::parse(mjson);
    ASSERT_TRUE(mv.has_value());
    const JsonValue* tl = mv->find("balance_timeline");
    ASSERT_NE(tl, nullptr);
    EXPECT_EQ(tl->find("tracks")->items().size(), timeline.tracks.size());

    // The metrics mirror saw the same tracks.
    EXPECT_EQ(metrics_reg.counter("balance.tracks").value(), rep.balance.tracks);
    EXPECT_EQ(metrics_reg.histogram("balance.rebalance_rounds").count(), rep.balance.tracks);
    EXPECT_EQ(metrics_reg.histogram("balance.track_skew").count(), rep.balance.tracks);
    EXPECT_EQ(metrics_reg.counter("balance.matched_blocks").value(),
              rep.balance.matched_blocks);
}

// ---------------------------------------------------------------------------
// Acceptance: end-to-end instrumented sort, D = 8, file-backed, engine on.
// ---------------------------------------------------------------------------

TEST(ObservabilityAcceptance, FileBackedSortEmitsSpansPairsAndHistograms) {
    PdmConfig cfg{.n = 1 << 14, .m = 1 << 10, .d = 8, .b = 16, .p = 4};
    DiskArray disks(cfg.d, cfg.b, DiskBackend::kFile,
                    std::filesystem::temp_directory_path().string());
    auto input = generate(Workload::kUniform, cfg.n, 42);

    Tracer tracer;
    MetricsRegistry metrics_reg;
    SortOptions opt;
    opt.async_io = AsyncIo::kOn;
    opt.trace = &tracer;
    opt.metrics = &metrics_reg;
    SortReport rep;
    auto sorted = balance_sort_records(disks, input, cfg, opt, &rep);
    ASSERT_TRUE(is_sorted_permutation_of(input, sorted));

    std::ostringstream os;
    tracer.write_chrome_trace(os);
    const std::string trace = os.str();
    ASSERT_TRUE(JsonChecker(trace).valid());

    // The top-level sort span and the four phase lanes.
    EXPECT_TRUE(contains(trace, "\"name\":\"balance_sort\""));
    EXPECT_TRUE(contains(trace, "\"cat\":\"sort\""));
    EXPECT_TRUE(contains(trace, "\"cat\":\"phase\""));
    EXPECT_TRUE(contains(trace, "\"name\":\"pivot\""));
    EXPECT_TRUE(contains(trace, "\"name\":\"balance\""));
    EXPECT_TRUE(contains(trace, "\"name\":\"base_case\""));
    EXPECT_TRUE(contains(trace, "\"io_steps\""));
    // Per-disk engine op spans on their own lanes.
    EXPECT_TRUE(contains(trace, "\"cat\":\"io\""));
    EXPECT_TRUE(contains(trace, "\"name\":\"read\""));
    EXPECT_TRUE(contains(trace, "\"name\":\"write\""));
    EXPECT_TRUE(contains(trace, "disk 0 io"));
    EXPECT_TRUE(contains(trace, "disk 7 io"));
    // Prefetch issue/consume async pairs (double buffering always engages
    // on the async backend; cross-bucket staging rides the same mechanism).
    EXPECT_TRUE(contains(trace, "\"cat\":\"prefetch\""));
    EXPECT_TRUE(contains(trace, "\"ph\":\"b\""));
    EXPECT_TRUE(contains(trace, "\"ph\":\"e\""));
    EXPECT_GT(rep.phases.staged_prefetches, 0u);
    EXPECT_TRUE(contains(trace, "\"cat\":\"staging\""));

    // Metrics snapshot: per-disk latency histograms with real samples,
    // engine queue depth, pool instruments.
    const std::string mjson = metrics_reg.to_json();
    ASSERT_TRUE(JsonChecker(mjson).valid());
    for (std::uint32_t d = 0; d < cfg.d; ++d) {
        const std::string tag = std::to_string(d);
        EXPECT_TRUE(contains(mjson, "\"disk" + tag + ".read_latency_us\""));
        EXPECT_TRUE(contains(mjson, "\"disk" + tag + ".write_latency_us\""));
    }
    EXPECT_TRUE(contains(mjson, "\"engine.queue_depth\""));
    EXPECT_TRUE(contains(mjson, "\"pool.acquire_records\""));
    EXPECT_GT(metrics_reg.histogram("disk0.read_latency_us").count(), 0u);
    EXPECT_GT(metrics_reg.histogram("disk0.write_latency_us").count(), 0u);
    EXPECT_GT(metrics_reg.histogram("engine.queue_depth").count(), 0u);
    EXPECT_GT(metrics_reg.counter("pool.hits").value() +
                  metrics_reg.counter("pool.misses").value(),
              0u);

    // File round-trips parse too.
    const std::string tmp =
        (std::filesystem::temp_directory_path() / "balsort_obs_trace.json").string();
    ASSERT_TRUE(tracer.write_chrome_trace_file(tmp));
    std::ifstream in(tmp);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_TRUE(JsonChecker(buf.str()).valid());
    std::filesystem::remove(tmp);
}

// The sync (engine-off) path still records per-op latency histograms via
// DiskArray::bind_obs, and fault recovery emits instant events.
TEST(ObservabilityAcceptance, SyncPathHistogramsAndFaultInstants) {
    PdmConfig cfg{.n = 1 << 12, .m = 1 << 9, .d = 4, .b = 8, .p = 2};
    FaultTolerance ft;
    ft.inject.seed = 7;
    ft.inject.read_transient_rate = 0.05;
    ft.inject.write_transient_rate = 0.05;
    DiskArray disks(cfg.d, cfg.b, DiskBackend::kMemory, ".", Constraint::kIndependentDisks, ft);

    Tracer tracer;
    MetricsRegistry metrics_reg;
    {
        TracerInstallGuard tg(&tracer);
        MetricsInstallGuard mg(&metrics_reg);
        auto input = generate(Workload::kUniform, cfg.n, 5);
        SortOptions opt;
        opt.async_io = AsyncIo::kOff;
        auto sorted = balance_sort_records(disks, input, cfg, opt, nullptr);
        ASSERT_TRUE(is_sorted_permutation_of(input, sorted));
    }
    EXPECT_GT(metrics_reg.histogram("disk0.read_latency_us").count(), 0u);
    EXPECT_GT(metrics_reg.histogram("disk0.write_latency_us").count(), 0u);
    ASSERT_GT(disks.stats().transient_retries, 0u);
    std::ostringstream os;
    tracer.write_chrome_trace(os);
    const std::string trace = os.str();
    ASSERT_TRUE(JsonChecker(trace).valid());
    EXPECT_TRUE(contains(trace, "\"cat\":\"fault\""));
    EXPECT_TRUE(contains(trace, "\"name\":\"transient_retry\""));
    EXPECT_TRUE(contains(trace, "\"s\":\"t\"")); // thread-scoped instants
}

} // namespace
} // namespace balsort

// ---------------------------------------------------------------------------
// Sampling profiler (obs/profiler.hpp, DESIGN.md §17).

// Fabricated stack frames for record_sample_for_test. External linkage +
// ENABLE_EXPORTS puts them in the dynamic symbol table, so dladdr
// symbolization resolves real names; extern "C" keeps those names exact.
extern "C" {
int balsort_prof_frame_root() { return 1; }
int balsort_prof_frame_mid() { return 2; }
int balsort_prof_frame_leaf() { return 3; }
}

namespace balsort {
namespace {

void* frame_addr(int (*fn)()) { return reinterpret_cast<void*>(fn); }

TEST(ProfilerTest, FoldedStacksAggregateRootFirstAndDeterministically) {
    ProfilerConfig cfg;
    cfg.ring_slots = 64;
    cfg.max_threads = 2;
    Profiler p(cfg);
    // backtrace order is leaf-first; folded output must flip to root-first.
    void* deep[3] = {frame_addr(&balsort_prof_frame_leaf), frame_addr(&balsort_prof_frame_mid),
                     frame_addr(&balsort_prof_frame_root)};
    void* shallow[1] = {frame_addr(&balsort_prof_frame_root)};
    for (int i = 0; i < 3; ++i) p.record_sample_for_test(deep, 3);
    p.record_sample_for_test(shallow, 1);

    const std::string folded = p.folded_string();
    EXPECT_EQ(folded, p.folded_string()); // byte-identical re-dump

    // Two unique stacks, descending count: the 3-sample stack first.
    std::istringstream lines(folded);
    std::string first, second, extra;
    ASSERT_TRUE(static_cast<bool>(std::getline(lines, first)));
    ASSERT_TRUE(static_cast<bool>(std::getline(lines, second)));
    EXPECT_FALSE(static_cast<bool>(std::getline(lines, extra)));
    EXPECT_TRUE(first.size() > 2 && first.substr(first.size() - 2) == " 3") << first;
    EXPECT_TRUE(second.size() > 2 && second.substr(second.size() - 2) == " 1") << second;
    // Root-first ordering with dladdr-resolved names.
    EXPECT_TRUE(contains(first, "balsort_prof_frame_root;")) << first;
    EXPECT_TRUE(contains(first, ";balsort_prof_frame_leaf ")) << first;
    EXPECT_TRUE(contains(second, "balsort_prof_frame_root ")) << second;
}

TEST(ProfilerTest, RingWrapOverwritesOldestButCountsEverySample) {
    ProfilerConfig cfg;
    cfg.ring_slots = 8; // tiny ring: 20 samples force wrap-around
    cfg.max_threads = 1;
    Profiler p(cfg);
    void* frames[2] = {frame_addr(&balsort_prof_frame_leaf),
                       frame_addr(&balsort_prof_frame_root)};
    for (int i = 0; i < 20; ++i) p.record_sample_for_test(frames, 2);
    EXPECT_EQ(p.sample_count(), 20u);
    EXPECT_EQ(p.dropped_samples(), 0u);
    // Only ring_slots samples survive; all share the one unique stack.
    const std::string folded = p.folded_string();
    EXPECT_TRUE(contains(folded, " 8\n")) << folded;
}

TEST(ProfilerTest, RingPoolExhaustionDropsInsteadOfBlocking) {
    ProfilerConfig cfg;
    cfg.ring_slots = 8;
    cfg.max_threads = 1; // one ring: the second thread must be turned away
    Profiler p(cfg);
    void* frames[1] = {frame_addr(&balsort_prof_frame_root)};
    p.record_sample_for_test(frames, 1); // claims the only ring
    std::thread other([&] { p.record_sample_for_test(frames, 1); });
    other.join();
    EXPECT_EQ(p.sample_count(), 1u);
    EXPECT_EQ(p.dropped_samples(), 1u);
}

TEST(ProfilerTest, StartStopNestAndSecondProfilerIsRejected) {
    Profiler p;
    p.start();
    p.start(); // nested: refcounted, not re-armed
    EXPECT_TRUE(p.running());
    Profiler q;
    EXPECT_THROW(q.start(), std::runtime_error); // one process-wide sampler
    p.stop();
    EXPECT_TRUE(p.running()); // inner stop only decrements
    p.stop();
    EXPECT_FALSE(p.running());
    q.start(); // slot free again
    q.stop();
}

TEST(ProfilerTest, LiveSamplingCapturesRealStacks) {
    ProfilerConfig cfg;
    cfg.hz = 997;
    Profiler p(cfg);
    p.start();
    // Burn CPU until a few SIGPROF ticks land (ITIMER_PROF counts CPU
    // time, so this cannot hang on an idle machine — only on a stopped
    // clock). Cap the spin to keep a worst-case bound.
    volatile std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < 2'000'000'000ull && p.sample_count() < 5; ++i) sink += i;
    p.stop();
    EXPECT_GE(p.sample_count(), 5u);
    const std::string folded = p.folded_string();
    EXPECT_FALSE(folded.empty());
    // Every line is "stack count" with a positive trailing count.
    std::istringstream lines(folded);
    std::string line;
    while (std::getline(lines, line)) {
        const auto space = line.find_last_of(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
    }
}

TEST(ProfilerTest, EmitToTracerLandsSamplesOnProfileLanes) {
    ProfilerConfig cfg;
    cfg.ring_slots = 16;
    Profiler p(cfg);
    void* frames[2] = {frame_addr(&balsort_prof_frame_leaf),
                       frame_addr(&balsort_prof_frame_root)};
    for (int i = 0; i < 4; ++i) p.record_sample_for_test(frames, 2);

    Tracer tracer;
    EXPECT_EQ(p.emit_to_tracer(&tracer), 4u);
    EXPECT_EQ(p.emit_to_tracer(nullptr), 0u);
    std::ostringstream os;
    tracer.write_chrome_trace(os);
    const std::string trace = os.str();
    ASSERT_TRUE(JsonChecker(trace).valid());
    EXPECT_TRUE(contains(trace, "\"cat\":\"profile\""));
    EXPECT_TRUE(contains(trace, "profile ")); // per-thread lane metadata
    EXPECT_TRUE(contains(trace, "balsort_prof_frame_leaf")); // leaf-named instants
}

} // namespace
} // namespace balsort
