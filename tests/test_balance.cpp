// Tests for src/core/balance: the Balance/Rebalance/Rearrange machinery —
// Invariants 1-2 per track, Theorem 4's ~2x bucket-read bound, defer
// policies, matching strategies, aux rules, and record conservation.
#include <gtest/gtest.h>

#include "core/balance.hpp"
#include "util/workload.hpp"

namespace balsort {
namespace {

struct BalanceRun {
    std::vector<BucketOutput> buckets;
    BalanceStats stats;
    IoStats io;
};

BalanceRun run_balance(std::vector<Record> recs, std::uint32_t d, std::uint32_t dv,
                       std::uint32_t b, std::uint64_t m, std::uint32_t s_target,
                       BalanceOptions opt) {
    DiskArray disks(d, b);
    VirtualDisks vd(disks, dv);
    Parallel pool(2);
    BalanceRun out;
    VectorSource src_for_pivots(recs);
    auto pivots = compute_pivots_sampling(src_for_pivots, recs.size(), m, s_target, pool);
    VectorSource src(recs);
    opt.check_invariants = true; // hard-verify Invariants 1-2 on every track
    const IoStats before = disks.stats();
    out.buckets = balance_pass(src, pivots, vd, m, opt, pool, nullptr, nullptr, &out.stats);
    out.io = disks.stats() - before;
    return out;
}

/// Read every bucket back (via the retained arena disks is awkward; we
/// instead verify conservation on counts and balance on the metadata).
std::uint64_t total_records(const std::vector<BucketOutput>& buckets) {
    std::uint64_t n = 0;
    for (const auto& b : buckets) n += b.run.n_records;
    return n;
}

class BalanceWorkloadTest : public ::testing::TestWithParam<Workload> {};

TEST_P(BalanceWorkloadTest, InvariantsAndConservation) {
    const Workload w = GetParam();
    auto recs = generate(w, 6000, 21);
    auto r = run_balance(recs, /*d=*/8, /*dv=*/4, /*b=*/8, /*m=*/512, /*s=*/4,
                         BalanceOptions{});
    EXPECT_EQ(total_records(r.buckets), recs.size()) << to_string(w);
    EXPECT_TRUE(r.stats.invariant1_held);
    EXPECT_TRUE(r.stats.invariant2_held);
    EXPECT_GT(r.stats.tracks, 0u);
}

std::string test_safe(std::string s) {
    for (char& c : s) {
        if (c == '-') c = '_';
    }
    return s;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, BalanceWorkloadTest,
                         ::testing::ValuesIn(all_workloads()),
                         [](const auto& pinfo) { return test_safe(to_string(pinfo.param)); });

TEST(Balance, Theorem4BucketReadBound) {
    // Every bucket with at least one full round of virtual blocks reads in
    // at most ~2x the optimal number of steps.
    for (Workload w : {Workload::kUniform, Workload::kGaussian, Workload::kZipf,
                       Workload::kSorted}) {
        auto recs = generate(w, 20000, 33);
        auto r = run_balance(recs, 8, 4, 8, 1024, 4, BalanceOptions{});
        for (std::size_t b = 0; b < r.buckets.size(); ++b) {
            const auto& run = r.buckets[b].run;
            if (run.entries.size() < 8) continue; // rounding regime
            const double ratio = static_cast<double>(run.read_steps(4)) /
                                 static_cast<double>(run.optimal_read_steps(4));
            EXPECT_LE(ratio, 2.25) << to_string(w) << " bucket " << b;
        }
    }
}

TEST(Balance, BucketKeyRangesAreDisjointAndOrdered) {
    auto recs = generate(Workload::kUniform, 8000, 5);
    auto r = run_balance(recs, 4, 2, 4, 512, 4, BalanceOptions{});
    std::uint64_t last_max = 0;
    bool first = true;
    for (const auto& b : r.buckets) {
        if (b.run.n_records == 0) continue;
        if (!first) {
            EXPECT_GT(b.min_key, last_max);
        }
        last_max = b.max_key;
        first = false;
        EXPECT_LE(b.min_key, b.max_key);
    }
}

TEST(Balance, EqualClassBucketsAreSingleKey) {
    auto recs = generate(Workload::kDuplicateHeavy, 5000, 8);
    auto r = run_balance(recs, 4, 2, 4, 512, 8, BalanceOptions{});
    for (const auto& b : r.buckets) {
        if (b.is_equal_class && b.run.n_records > 0) {
            EXPECT_EQ(b.min_key, b.max_key);
        }
    }
}

TEST(Balance, MatchingStrategiesAllMaintainInvariants) {
    auto recs = generate(Workload::kGaussian, 10000, 13);
    for (auto strat : {MatchStrategy::kGreedy, MatchStrategy::kRandomized,
                       MatchStrategy::kDerandomized}) {
        BalanceOptions opt;
        opt.matching = strat;
        auto r = run_balance(recs, 8, 4, 4, 512, 4, opt);
        EXPECT_EQ(total_records(r.buckets), recs.size()) << to_string(strat);
        EXPECT_TRUE(r.stats.invariant2_held) << to_string(strat);
    }
}

TEST(Balance, DeferPoliciesBothConverge) {
    auto recs = generate(Workload::kZipf, 12000, 17);
    for (auto defer : {DeferPolicy::kPaperDefer, DeferPolicy::kRebalanceAll}) {
        BalanceOptions opt;
        opt.defer = defer;
        auto r = run_balance(recs, 8, 4, 4, 512, 4, opt);
        EXPECT_EQ(total_records(r.buckets), recs.size());
        EXPECT_TRUE(r.stats.invariant2_held);
        if (defer == DeferPolicy::kRebalanceAll) {
            // Greedy matching + rebalance-all places everything: nothing
            // is ever deferred.
            EXPECT_EQ(r.stats.deferred_blocks, 0u);
        }
    }
}

TEST(Balance, ArgAuxRuleWorksToo) {
    auto recs = generate(Workload::kUniform, 8000, 23);
    BalanceOptions opt;
    opt.aux = AuxRule::kArgTwiceAvg;
    auto r = run_balance(recs, 8, 4, 4, 512, 4, opt);
    EXPECT_EQ(total_records(r.buckets), recs.size());
    // Theorem-4-style bound under the [Arg] rule: factor ~2 of average.
    for (const auto& b : r.buckets) {
        if (b.run.entries.size() < 8) continue;
        const double ratio = static_cast<double>(b.run.read_steps(4)) /
                             static_cast<double>(b.run.optimal_read_steps(4));
        EXPECT_LE(ratio, 2.5);
    }
}

TEST(Balance, LeastLoadedAssignmentReducesMatching) {
    auto recs = generate(Workload::kGaussian, 16000, 29);
    BalanceOptions cyclic;
    cyclic.assign = AssignPolicy::kCyclic;
    auto rc = run_balance(recs, 8, 4, 4, 512, 4, cyclic);
    BalanceOptions least;
    least.assign = AssignPolicy::kLeastLoaded;
    auto rl = run_balance(recs, 8, 4, 4, 512, 4, least);
    EXPECT_EQ(total_records(rl.buckets), recs.size());
    // Least-loaded placement should need at most as much rebalancing.
    EXPECT_LE(rl.stats.matched_blocks + rl.stats.deferred_blocks,
              rc.stats.matched_blocks + rc.stats.deferred_blocks + 8);
}

TEST(Balance, RearrangeRoundsBounded) {
    // Algorithm 5's loop "will thus execute at most twice" per track under
    // the paper defer policy with a quarter-guarantee matcher; allow a
    // small safety margin over the paper's 2 for the deterministic
    // engines' conflict patterns.
    for (Workload w : {Workload::kUniform, Workload::kGaussian, Workload::kZipf}) {
        auto recs = generate(w, 10000, 31);
        BalanceOptions opt;
        opt.defer = DeferPolicy::kPaperDefer;
        auto r = run_balance(recs, 8, 4, 4, 512, 4, opt);
        EXPECT_LE(r.stats.max_rounds_per_track, 3u) << to_string(w);
    }
}

TEST(Balance, WritesOneVBlockPerVdiskPerStep) {
    // I/O accounting: block writes / write steps <= D' per step by the
    // model; with healthy tracks it should also be close to D' on average.
    auto recs = generate(Workload::kUniform, 20000, 37);
    auto r = run_balance(recs, 8, 4, 4, 1024, 4, BalanceOptions{});
    ASSERT_GT(r.io.write_steps, 0u);
    const double blocks_per_step = static_cast<double>(r.io.blocks_written) /
                                   static_cast<double>(r.io.write_steps);
    EXPECT_LE(blocks_per_step, 8.0 + 1e-9); // D physical blocks per step max
    EXPECT_GE(blocks_per_step, 2.0);        // decent utilization
}

TEST(Balance, TinyInputsAndEdgeCases) {
    // Fewer records than one virtual block; single bucket.
    auto recs = generate(Workload::kUniform, 3, 41);
    auto r = run_balance(recs, 4, 2, 4, 64, 2, BalanceOptions{});
    EXPECT_EQ(total_records(r.buckets), 3u);
    // Empty input.
    auto r0 = run_balance({}, 4, 2, 4, 64, 2, BalanceOptions{});
    EXPECT_EQ(total_records(r0.buckets), 0u);
    EXPECT_EQ(r0.stats.tracks, 0u);
}

TEST(Balance, SingleVirtualDisk) {
    auto recs = generate(Workload::kUniform, 2000, 43);
    auto r = run_balance(recs, 4, 1, 4, 256, 4, BalanceOptions{});
    EXPECT_EQ(total_records(r.buckets), recs.size());
    // With one virtual disk the auxiliary matrix is identically zero.
    EXPECT_EQ(r.stats.matched_blocks, 0u);
    EXPECT_EQ(r.stats.deferred_blocks, 0u);
}

TEST(Balance, MemorySmallerThanVBlockRejected) {
    auto recs = generate(Workload::kUniform, 100, 47);
    EXPECT_THROW(run_balance(recs, 8, 1, 8, 32, 2, BalanceOptions{}),
                 std::invalid_argument); // vblock = 64 > m = 32
}

} // namespace
} // namespace balsort
