// Tests for src/core/matching: the three Fast-Partial-Match engines and
// Theorem 5's guarantees.
#include <gtest/gtest.h>

#include <set>

#include "core/matching.hpp"
#include "util/math.hpp"

namespace balsort {
namespace {

/// Build a paper-shaped instance: n_vdisks = H', |U| <= floor(H'/2), every
/// U-vertex has >= ceil(H'/2) candidates. Returns candidates.
std::vector<std::vector<std::uint32_t>> paper_instance(std::uint32_t h, std::size_t u_size,
                                                       Xoshiro256& rng) {
    std::vector<std::vector<std::uint32_t>> cands(u_size);
    const std::uint32_t need = static_cast<std::uint32_t>(ceil_div(h, 2));
    for (auto& c : cands) {
        // random candidate set of size in [need, h]
        const std::uint32_t size = need + static_cast<std::uint32_t>(rng.below(h - need + 1));
        std::vector<std::uint32_t> all(h);
        for (std::uint32_t i = 0; i < h; ++i) all[i] = i;
        for (std::uint32_t i = 0; i < h; ++i) std::swap(all[i], all[i + rng.below(h - i)]);
        c.assign(all.begin(), all.begin() + size);
        std::sort(c.begin(), c.end());
    }
    return cands;
}

void check_valid_matching(const std::vector<std::vector<std::uint32_t>>& cands,
                          const MatchResult& r) {
    ASSERT_EQ(r.matched.size(), cands.size());
    std::set<std::uint32_t> targets;
    std::uint32_t count = 0;
    for (std::size_t i = 0; i < cands.size(); ++i) {
        const std::uint32_t v = r.matched[i];
        if (v == MatchResult::kUnmatched) continue;
        ++count;
        // target must be a candidate of i
        EXPECT_TRUE(std::binary_search(cands[i].begin(), cands[i].end(), v))
            << "u=" << i << " matched non-candidate " << v;
        // targets distinct
        EXPECT_TRUE(targets.insert(v).second) << "duplicate target " << v;
    }
    EXPECT_EQ(count, r.n_matched);
}

TEST(Matching, GreedyMatchesEveryVertexOnPaperInstances) {
    // |U| <= floor(H'/2) and each u has >= ceil(H'/2) candidates =>
    // greedy always finds a free candidate (DESIGN.md §5.4).
    Xoshiro256 rng(1);
    Xoshiro256 unused(0);
    for (std::uint32_t h : {2u, 3u, 4u, 7u, 8u, 16u, 33u}) {
        for (int trial = 0; trial < 20; ++trial) {
            const std::size_t u_size = 1 + rng.below(std::max<std::uint32_t>(1, h / 2));
            auto cands = paper_instance(h, u_size, rng);
            auto r = fast_partial_match(cands, h, MatchStrategy::kGreedy, unused);
            check_valid_matching(cands, r);
            EXPECT_EQ(r.n_matched, u_size) << "h=" << h;
        }
    }
}

TEST(Matching, RandomizedMeetsQuarterBound) {
    // Theorem 5 / Lemma 1: >= ceil(|U|/4) matched (we assert the
    // deterministic floor on every trial since conflicts only shrink the
    // matching below |U|, and the expectation argument gives H'/4; any
    // trial far below would indicate a bug).
    Xoshiro256 rng(2);
    std::uint64_t total_matched = 0, total_u = 0;
    for (int trial = 0; trial < 200; ++trial) {
        const std::uint32_t h = 4 + static_cast<std::uint32_t>(rng.below(29));
        const std::size_t u_size = 1 + rng.below(std::max<std::uint32_t>(1, h / 2));
        auto cands = paper_instance(h, u_size, rng);
        Xoshiro256 match_rng(trial);
        auto r = fast_partial_match(cands, h, MatchStrategy::kRandomized, match_rng);
        check_valid_matching(cands, r);
        EXPECT_GE(r.n_matched, 1u);
        EXPECT_GT(r.draws, 0u);
        total_matched += r.n_matched;
        total_u += u_size;
    }
    // On average well above the 1/4 guarantee.
    EXPECT_GE(4 * total_matched, total_u);
}

TEST(Matching, DerandomizedMeetsQuarterBoundDeterministically) {
    Xoshiro256 rng(3);
    Xoshiro256 unused(0);
    for (int trial = 0; trial < 60; ++trial) {
        const std::uint32_t h = 2 + static_cast<std::uint32_t>(rng.below(15));
        const std::size_t u_size = 1 + rng.below(std::max<std::uint32_t>(1, h / 2));
        auto cands = paper_instance(h, u_size, rng);
        auto r = fast_partial_match(cands, h, MatchStrategy::kDerandomized, unused);
        check_valid_matching(cands, r);
        EXPECT_GE(r.n_matched, ceil_div(u_size, 4)) << "h=" << h << " |U|=" << u_size;
        // Deterministic: identical re-run gives identical result.
        auto r2 = fast_partial_match(cands, h, MatchStrategy::kDerandomized, unused);
        EXPECT_EQ(r.matched, r2.matched);
    }
}

TEST(Matching, RandomizedIsDeterministicInSeed) {
    Xoshiro256 gen(4);
    auto cands = paper_instance(16, 8, gen);
    Xoshiro256 a(99), b(99), c(100);
    auto ra = fast_partial_match(cands, 16, MatchStrategy::kRandomized, a);
    auto rb = fast_partial_match(cands, 16, MatchStrategy::kRandomized, b);
    EXPECT_EQ(ra.matched, rb.matched);
    auto rc = fast_partial_match(cands, 16, MatchStrategy::kRandomized, c);
    (void)rc; // different seed may or may not differ; just must be valid
    check_valid_matching(cands, rc);
}

TEST(Matching, SingleVertexSingleCandidate) {
    Xoshiro256 rng(5);
    std::vector<std::vector<std::uint32_t>> cands = {{2}};
    for (auto strat : {MatchStrategy::kGreedy, MatchStrategy::kRandomized,
                       MatchStrategy::kDerandomized}) {
        auto r = fast_partial_match(cands, 4, strat, rng);
        EXPECT_EQ(r.n_matched, 1u) << to_string(strat);
        EXPECT_EQ(r.matched[0], 2u);
    }
}

TEST(Matching, EmptyUMatchesNothing) {
    Xoshiro256 rng(6);
    std::vector<std::vector<std::uint32_t>> cands;
    auto r = fast_partial_match(cands, 8, MatchStrategy::kGreedy, rng);
    EXPECT_EQ(r.n_matched, 0u);
}

TEST(Matching, ConflictResolutionSmallestWins) {
    // Two vertices with the identical single candidate: exactly one match,
    // and for the randomized engine it must be u=0 (Algorithm 7 step (2)).
    Xoshiro256 rng(7);
    std::vector<std::vector<std::uint32_t>> cands = {{3}, {3}};
    auto r = fast_partial_match(cands, 4, MatchStrategy::kRandomized, rng);
    EXPECT_EQ(r.n_matched, 1u);
    EXPECT_EQ(r.matched[0], 3u);
    EXPECT_EQ(r.matched[1], MatchResult::kUnmatched);
}

TEST(Matching, InputValidation) {
    Xoshiro256 rng(8);
    std::vector<std::vector<std::uint32_t>> out_of_range = {{9}};
    EXPECT_THROW(fast_partial_match(out_of_range, 4, MatchStrategy::kGreedy, rng),
                 std::invalid_argument);
    std::vector<std::vector<std::uint32_t>> unsorted = {{3, 1}};
    EXPECT_THROW(fast_partial_match(unsorted, 4, MatchStrategy::kGreedy, rng),
                 std::invalid_argument);
    std::vector<std::vector<std::uint32_t>> empty_cands = {{}};
    EXPECT_THROW(fast_partial_match(empty_cands, 4, MatchStrategy::kRandomized, rng),
                 std::invalid_argument);
}

TEST(Matching, StrategyNames) {
    EXPECT_STREQ(to_string(MatchStrategy::kGreedy), "greedy");
    EXPECT_STREQ(to_string(MatchStrategy::kRandomized), "randomized");
    EXPECT_STREQ(to_string(MatchStrategy::kDerandomized), "derandomized");
}

// Worst-case shaped instance: all U-vertices share the same minimal
// candidate set (exactly ceil(H'/2) zeros) — the adversarial case for
// conflicts.
TEST(Matching, AdversarialSharedCandidates) {
    Xoshiro256 rng(9);
    for (std::uint32_t h : {4u, 8u, 12u, 16u}) {
        const std::uint32_t need = static_cast<std::uint32_t>(ceil_div(h, 2));
        std::vector<std::uint32_t> shared(need);
        for (std::uint32_t i = 0; i < need; ++i) shared[i] = i;
        std::vector<std::vector<std::uint32_t>> cands(h / 2, shared);
        auto g = fast_partial_match(cands, h, MatchStrategy::kGreedy, rng);
        EXPECT_EQ(g.n_matched, h / 2) << "greedy must still match all (|U| <= |shared|)";
        auto d = fast_partial_match(cands, h, MatchStrategy::kDerandomized, rng);
        EXPECT_GE(d.n_matched, ceil_div(h / 2, 4));
        check_valid_matching(cands, d);
    }
}

} // namespace
} // namespace balsort
