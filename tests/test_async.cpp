// Tests for the asynchronous request/completion engine (DESIGN.md §9):
// AsyncEngine semantics (per-disk FIFO, deferred failures, retry counting),
// DiskArray's async entry points (charge-at-submit accounting, prefetch +
// charge-at-consume, write-behind), and the end-to-end guarantee that a
// sort run through the engine is bit-identical to the synchronous path in
// everything the model measures — io_steps, structure counters, output —
// while actually routing its blocks through the worker threads.
#include <gtest/gtest.h>

#include <filesystem>

#include "balsort.hpp"
#include "pdm/async_engine.hpp"
#include "pdm/faulty_disk.hpp"
#include "pdm/mem_disk.hpp"

namespace balsort {
namespace {

std::vector<Record> make_block(std::size_t b, std::uint64_t tag) {
    std::vector<Record> blk(b);
    for (std::size_t i = 0; i < b; ++i) blk[i] = {tag * 100 + i, tag};
    return blk;
}

// ------------------------------------------------------------- AsyncEngine

TEST(AsyncEngine, PerDiskFifoMakesReadAfterWriteSafe) {
    // A read submitted after a write of the same block, in the same batch,
    // must see the written data — the FIFO guarantee call sites rely on.
    constexpr std::size_t kB = 4;
    std::vector<std::unique_ptr<MemDisk>> disks;
    std::vector<Disk*> tops;
    for (int i = 0; i < 2; ++i) {
        disks.push_back(std::make_unique<MemDisk>(kB));
        tops.push_back(disks.back().get());
    }
    AsyncEngine engine(tops, /*max_retries=*/0, /*backoff_base_us=*/0);

    constexpr std::uint64_t kBlocksPerDisk = 16;
    std::vector<std::vector<Record>> images;
    std::vector<Record> readback(2 * kBlocksPerDisk * kB);
    std::vector<IoRequest> requests;
    for (std::uint64_t blk = 0; blk < kBlocksPerDisk; ++blk) {
        for (std::uint32_t d = 0; d < 2; ++d) {
            images.push_back(make_block(kB, blk * 2 + d));
            IoRequest w;
            w.kind = IoRequest::Kind::kWrite;
            w.disk = d;
            w.block = blk;
            w.write_data = images.back().data();
            requests.push_back(w);
            IoRequest r;
            r.kind = IoRequest::Kind::kRead;
            r.disk = d;
            r.block = blk;
            r.read_buf = readback.data() + (blk * 2 + d) * kB;
            requests.push_back(r);
        }
    }
    AsyncBatch batch = engine.submit(std::move(requests));
    const auto& comps = engine.wait(batch);
    ASSERT_EQ(comps.size(), 4 * kBlocksPerDisk);
    for (std::size_t i = 0; i < comps.size(); ++i) {
        EXPECT_TRUE(comps[i].ok);
        EXPECT_EQ(comps[i].request_index, i); // ordered by submission index
    }
    for (std::uint64_t k = 0; k < 2 * kBlocksPerDisk; ++k) {
        EXPECT_EQ(std::vector<Record>(readback.begin() + static_cast<std::ptrdiff_t>(k * kB),
                                      readback.begin() + static_cast<std::ptrdiff_t>((k + 1) * kB)),
                  images[k])
            << "slot " << k;
    }
    const AsyncEngineMetrics m = engine.metrics();
    EXPECT_EQ(m.block_ops, 4 * kBlocksPerDisk);
    // A whole batch in one submit: the queue really got deep.
    EXPECT_GT(m.max_in_flight, 1u);
}

TEST(AsyncEngine, NonTransientFailureIsDeferredNotThrown) {
    auto disk = std::make_unique<MemDisk>(4);
    AsyncEngine engine({disk.get()}, 3, 0);
    std::vector<Record> buf(4);
    IoRequest r;
    r.kind = IoRequest::Kind::kRead;
    r.disk = 0;
    r.block = 7; // never written: ModelViolation below
    r.read_buf = buf.data();
    AsyncBatch batch = engine.submit({r});
    const auto& comps = engine.wait(batch); // does not throw
    ASSERT_EQ(comps.size(), 1u);
    EXPECT_FALSE(comps[0].ok);
    ASSERT_TRUE(comps[0].error != nullptr);
    EXPECT_THROW(std::rethrow_exception(comps[0].error), ModelViolation);
    // wait() is idempotent.
    EXPECT_FALSE(engine.wait(batch)[0].ok);
    EXPECT_TRUE(engine.done(batch));
}

TEST(AsyncEngine, TransientRetriesAreCountedAndDeterministic) {
    auto run_once = [](std::uint64_t& retries_out) {
        FaultSpec spec;
        spec.seed = 404;
        spec.read_transient_rate = 0.3;
        auto base = std::make_unique<MemDisk>(4);
        const auto blk = make_block(4, 1);
        for (std::uint64_t i = 0; i < 64; ++i) base->write_block(i, blk);
        FaultInjectingDisk faulty(std::move(base), spec, 0);
        AsyncEngine engine({&faulty}, /*max_retries=*/16, 0);
        std::vector<Record> buf(64 * 4);
        std::vector<IoRequest> reqs(64);
        for (std::uint64_t i = 0; i < 64; ++i) {
            reqs[i].kind = IoRequest::Kind::kRead;
            reqs[i].disk = 0;
            reqs[i].block = i;
            reqs[i].read_buf = buf.data() + i * 4;
        }
        AsyncBatch batch = engine.submit(std::move(reqs));
        retries_out = 0;
        for (const auto& c : engine.wait(batch)) {
            EXPECT_TRUE(c.ok);
            retries_out += c.transient_retries;
        }
    };
    std::uint64_t a = 0, b = 0;
    run_once(a);
    run_once(b);
    EXPECT_GT(a, 0u); // 64 reads at rate .3: retries essentially certain
    EXPECT_EQ(a, b);  // per-disk FIFO + seeded stream => same fault sequence
}

// ------------------------------------------------- DiskArray async routing

TEST(DiskArrayAsync, StepAccountingAndDataBitIdenticalToSync) {
    auto recs = generate(Workload::kUniform, 3000, 21);
    IoStats sync_stats, async_stats;
    std::vector<Record> sync_out, async_out;
    {
        DiskArray arr(4, 8);
        BlockRun run = write_striped(arr, recs);
        sync_out = read_run(arr, run);
        sync_stats = arr.stats();
    }
    {
        DiskArray arr(4, 8);
        arr.set_async(true);
        BlockRun run = write_striped(arr, recs);
        async_out = read_run(arr, run);
        arr.drain_async();
        async_stats = arr.stats();
        EXPECT_TRUE(arr.async_enabled());
    }
    EXPECT_EQ(async_out, sync_out);
    EXPECT_EQ(async_stats.read_steps, sync_stats.read_steps);
    EXPECT_EQ(async_stats.write_steps, sync_stats.write_steps);
    EXPECT_EQ(async_stats.blocks_read, sync_stats.blocks_read);
    EXPECT_EQ(async_stats.blocks_written, sync_stats.blocks_written);
    // ... but the async run really went through the engine.
    EXPECT_GT(async_stats.async_block_ops, 0u);
    EXPECT_GT(async_stats.max_in_flight, 1u);
    EXPECT_EQ(sync_stats.async_block_ops, 0u);
}

TEST(DiskArrayAsync, PrefetchChargesAtConsumeNotSubmit) {
    DiskArray arr(2, 4);
    arr.set_async(true);
    auto recs = generate(Workload::kUniform, 64, 3);
    BlockRun run = write_striped(arr, recs);
    arr.drain_async();
    const IoStats before = arr.stats();

    std::vector<Record> buf(run.blocks.size() * 4);
    DiskArray::ReadTicket t = arr.prefetch_read(run.blocks, buf);
    EXPECT_EQ(arr.stats().read_steps, before.read_steps); // physical only
    arr.complete_read(t);
    EXPECT_EQ(arr.stats().read_steps, before.read_steps); // still uncharged
    arr.charge_read_batch(run.blocks);                    // the model cost
    const IoStats after = arr.stats();
    EXPECT_EQ(after.read_steps - before.read_steps, run.read_steps(2));
    EXPECT_EQ(after.blocks_read - before.blocks_read, run.n_blocks());
    // Data arrived through the uncharged path.
    for (std::uint64_t i = 0; i < recs.size(); ++i) EXPECT_EQ(buf[i], recs[i]);
}

TEST(DiskArrayAsync, WriteBehindPermanentFailureSurfaces) {
    // Without parity a permanently failed write has nowhere to go: the
    // deferred DiskFailed must reach the caller (at a later write or at
    // drain), never be swallowed.
    FaultTolerance ft;
    ft.inject.seed = 5;
    ft.inject.die_after_ops = 6;
    ft.die_disk = 0;
    DiskArray arr(2, 4, DiskBackend::kMemory, ".", Constraint::kIndependentDisks, ft);
    arr.set_async(true);
    auto recs = generate(Workload::kUniform, 256, 4);
    EXPECT_THROW(
        {
            BlockRun run = write_striped(arr, recs);
            arr.drain_async();
            (void)run;
        },
        DiskFailed);
    EXPECT_FALSE(arr.health(0).alive);
}

TEST(DiskArrayAsync, SetAsyncOffFoldsMetricsAndRestoresSyncPath) {
    DiskArray arr(2, 4);
    arr.set_async(true);
    auto recs = generate(Workload::kUniform, 128, 6);
    BlockRun run = write_striped(arr, recs);
    EXPECT_EQ(read_run(arr, run), recs);
    arr.set_async(false);
    EXPECT_FALSE(arr.async_enabled());
    const std::uint64_t ops_after_disable = arr.stats().async_block_ops;
    EXPECT_GT(ops_after_disable, 0u); // folded, not lost
    // Back on the sync path: further I/O charges steps but no engine ops.
    BlockRun run2 = write_striped(arr, recs);
    EXPECT_EQ(read_run(arr, run2), recs);
    EXPECT_EQ(arr.stats().async_block_ops, ops_after_disable);
}

// -------------------------------------------------- end-to-end balance_sort

TEST(BalanceSortAsync, ReportBitIdenticalToSyncOnMemoryBackend) {
    PdmConfig cfg{.n = 20000, .m = 1024, .d = 8, .b = 8, .p = 2};
    auto input = generate(Workload::kUniform, cfg.n, 17);
    SortReport sync_rep, async_rep;
    std::vector<Record> sync_sorted, async_sorted;
    {
        DiskArray disks(cfg.d, cfg.b);
        SortOptions opt;
        opt.async_io = AsyncIo::kOff;
        sync_sorted = balance_sort_records(disks, input, cfg, opt, &sync_rep);
    }
    {
        DiskArray disks(cfg.d, cfg.b);
        SortOptions opt;
        opt.async_io = AsyncIo::kOn;
        async_sorted = balance_sort_records(disks, input, cfg, opt, &async_rep);
        // The guard restored the array to its pre-sort (sync) state.
        EXPECT_FALSE(disks.async_enabled());
    }
    EXPECT_EQ(async_sorted, sync_sorted);
    EXPECT_EQ(async_rep.io.io_steps(), sync_rep.io.io_steps());
    EXPECT_EQ(async_rep.io.blocks_read, sync_rep.io.blocks_read);
    EXPECT_EQ(async_rep.io.blocks_written, sync_rep.io.blocks_written);
    EXPECT_EQ(async_rep.s_used, sync_rep.s_used);
    EXPECT_EQ(async_rep.levels, sync_rep.levels);
    EXPECT_EQ(async_rep.base_cases, sync_rep.base_cases);
    EXPECT_EQ(async_rep.d_virtual, sync_rep.d_virtual);
    EXPECT_EQ(async_rep.equal_class_records, sync_rep.equal_class_records);
    // Overlap metrics: only the async run shows engine activity.
    EXPECT_GT(async_rep.io.async_block_ops, 0u);
    EXPECT_GT(async_rep.io.max_in_flight, 1u);
    EXPECT_GT(async_rep.io.engine_busy_seconds, 0.0);
    EXPECT_EQ(sync_rep.io.async_block_ops, 0u);
    EXPECT_EQ(sync_rep.io.engine_busy_seconds, 0.0);
}

TEST(BalanceSortAsync, FileBackendAutoEnablesTheEngine) {
    PdmConfig cfg{.n = 6000, .m = 512, .d = 4, .b = 8, .p = 2};
    auto input = generate(Workload::kUniform, cfg.n, 23);
    const std::string dir = std::filesystem::temp_directory_path().string();
    SortReport auto_rep, off_rep;
    std::vector<Record> auto_sorted, off_sorted;
    {
        DiskArray disks(cfg.d, cfg.b, DiskBackend::kFile, dir);
        SortOptions opt; // async_io = kAuto
        auto_sorted = balance_sort_records(disks, input, cfg, opt, &auto_rep);
    }
    {
        DiskArray disks(cfg.d, cfg.b, DiskBackend::kFile, dir);
        SortOptions opt;
        opt.async_io = AsyncIo::kOff;
        off_sorted = balance_sort_records(disks, input, cfg, opt, &off_rep);
    }
    EXPECT_GT(auto_rep.io.async_block_ops, 0u); // kAuto == on for kFile
    EXPECT_EQ(off_rep.io.async_block_ops, 0u);
    EXPECT_EQ(auto_sorted, off_sorted);
    EXPECT_EQ(auto_rep.io.io_steps(), off_rep.io.io_steps());
}

// ------------------------------------------------- SortOptions::validate()

TEST(SortOptionsValidate, RejectsSketchWithSqrtLevelPolicy) {
    SortOptions opt;
    opt.pivot_method = PivotMethod::kStreamingSketch;
    opt.bucket_policy = BucketPolicy::kSqrtLevel;
    EXPECT_THROW(opt.validate(8), std::invalid_argument);
}

TEST(SortOptionsValidate, RejectsSTargetWithoutFixedPolicy) {
    SortOptions opt;
    opt.s_target = 4; // policy left at kPaperPdm
    EXPECT_THROW(opt.validate(8), std::invalid_argument);
    opt.bucket_policy = BucketPolicy::kFixed;
    EXPECT_NO_THROW(opt.validate(8));
}

TEST(SortOptionsValidate, RejectsDVirtualNotDividingD) {
    SortOptions opt;
    opt.d_virtual = 3;
    EXPECT_THROW(opt.validate(8), std::invalid_argument);
    opt.d_virtual = 4;
    EXPECT_NO_THROW(opt.validate(8));
    opt.d_virtual = 16; // larger than D
    EXPECT_THROW(opt.validate(8), std::invalid_argument);
}

TEST(SortOptionsValidate, BalanceSortRejectsIncoherentOptionsUpFront) {
    PdmConfig cfg{.n = 1000, .m = 256, .d = 4, .b = 4, .p = 1};
    DiskArray disks(cfg.d, cfg.b);
    auto input = generate(Workload::kUniform, cfg.n, 1);
    SortOptions opt;
    opt.s_target = 4; // without kFixed: previously silently implied
    EXPECT_THROW((void)balance_sort_records(disks, input, cfg, opt, nullptr),
                 std::invalid_argument);
}

} // namespace
} // namespace balsort
