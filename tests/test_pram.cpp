// Tests for src/pram: the Parallel view over the executor, prefix sums,
// monotone routing, deterministic selection, parallel sorts, PRAM cost
// accounting. The executor's own mechanics (stealing, nesting, TaskGroup)
// are covered by tests/test_executor.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "pram/executor.hpp"
#include "pram/monotone_route.hpp"
#include "pram/parallel_sort.hpp"
#include "pram/pram_cost.hpp"
#include "pram/prefix.hpp"
#include "pram/selection.hpp"
#include "util/random.hpp"
#include "util/workload.hpp"

namespace balsort {
namespace {

TEST(Parallel, SizeIsAtLeastOne) {
    Parallel p1(1);
    EXPECT_EQ(p1.size(), 1u);
    Executor exec(3);
    Parallel p4(4, &exec);
    EXPECT_EQ(p4.size(), 4u);
    Parallel p0(0);
    EXPECT_EQ(p0.size(), 1u);
}

TEST(Parallel, ParallelForCoversRangeExactlyOnce) {
    Executor exec(3);
    Parallel pool(4, &exec);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, 1000, [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ChunksAreContiguousAndOrdered) {
    Executor exec(2);
    Parallel pool(3, &exec);
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    pool.parallel_for(10, 110, [&](std::size_t lo, std::size_t hi, std::size_t) {
        std::lock_guard<std::mutex> g(mu);
        chunks.emplace_back(lo, hi);
    });
    std::sort(chunks.begin(), chunks.end());
    EXPECT_EQ(chunks.front().first, 10u);
    EXPECT_EQ(chunks.back().second, 110u);
    for (std::size_t i = 1; i < chunks.size(); ++i) {
        EXPECT_EQ(chunks[i].first, chunks[i - 1].second);
    }
}

TEST(Parallel, SerialFallbackKeepsChunkGeometry) {
    // A width-p Parallel with no executor must produce the same chunks
    // (bounds and indices) as an executor-backed one — the invariant that
    // keeps chunk-indexed algorithms identical between serial and parallel.
    Executor exec(2);
    for (std::size_t width : {2u, 3u, 5u}) {
        std::mutex mu;
        std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> par, ser;
        Parallel(width, &exec).parallel_for(
            7, 103, [&](std::size_t lo, std::size_t hi, std::size_t c) {
                std::lock_guard<std::mutex> g(mu);
                par.emplace_back(lo, hi, c);
            });
        Parallel(width).parallel_for(7, 103,
                                     [&](std::size_t lo, std::size_t hi, std::size_t c) {
                                         ser.emplace_back(lo, hi, c);
                                     });
        std::sort(par.begin(), par.end());
        std::sort(ser.begin(), ser.end());
        EXPECT_EQ(par, ser) << "width=" << width;
    }
}

TEST(Parallel, EmptyRangeIsNoop) {
    Executor exec(1);
    Parallel pool(2, &exec);
    bool called = false;
    pool.parallel_for(5, 5, [&](std::size_t, std::size_t, std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(Parallel, ExceptionsPropagate) {
    Executor exec(3);
    Parallel pool(4, &exec);
    EXPECT_THROW(pool.parallel_for(0, 100,
                                   [&](std::size_t lo, std::size_t, std::size_t) {
                                       if (lo == 0) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    // Executor is still usable afterwards.
    std::atomic<int> sum{0};
    pool.parallel_for(0, 10, [&](std::size_t lo, std::size_t hi, std::size_t) {
        sum += static_cast<int>(hi - lo);
    });
    EXPECT_EQ(sum.load(), 10);
}

TEST(Parallel, ParallelInvokeRunsPerLane) {
    Executor exec(2);
    Parallel pool(3, &exec);
    std::vector<std::atomic<int>> hit(3);
    pool.parallel_invoke([&](std::size_t w) { hit[w].fetch_add(1); });
    int total = 0;
    for (auto& h : hit) total += h.load();
    EXPECT_EQ(total, 3);
}

TEST(Prefix, SequentialExclusive) {
    std::vector<std::uint64_t> v = {3, 1, 4, 1, 5};
    EXPECT_EQ(exclusive_prefix_sum(v), 14u);
    EXPECT_EQ(v, (std::vector<std::uint64_t>{0, 3, 4, 8, 9}));
}

TEST(Prefix, ParallelMatchesSequential) {
    Executor exec(3);
    Parallel pool(4, &exec);
    for (std::size_t n : {0u, 1u, 7u, 100u, 1000u}) {
        std::vector<std::uint64_t> a(n), b;
        Xoshiro256 rng(n);
        for (auto& x : a) x = rng.below(100);
        b = a;
        const auto t1 = exclusive_prefix_sum(std::span<std::uint64_t>(b));
        PramCost cost(4);
        const auto t2 = exclusive_prefix_sum_parallel(a, pool, &cost);
        EXPECT_EQ(a, b) << "n=" << n;
        EXPECT_EQ(t1, t2);
        if (n > 0) {
            EXPECT_GT(cost.steps(), 0u);
        }
    }
}

TEST(Prefix, Segmented) {
    std::vector<std::uint64_t> v = {1, 1, 1, 1, 1};
    std::vector<std::uint8_t> f = {1, 0, 1, 0, 0};
    segmented_prefix_sum(v, f);
    EXPECT_EQ(v, (std::vector<std::uint64_t>{0, 1, 0, 1, 2}));
}

TEST(Prefix, SegmentHeads) {
    std::vector<std::uint64_t> keys = {4, 4, 7, 9, 9, 9};
    auto heads = segment_heads(keys);
    EXPECT_EQ(heads, (std::vector<std::uint32_t>{0, 0, 2, 3, 3, 3}));
}

TEST(MonotoneRoute, RoutesAndValidates) {
    std::vector<Record> items = {{10, 0}, {20, 1}, {30, 2}, {40, 3}};
    std::vector<Record> out(6);
    std::vector<std::uint32_t> src = {0, 2, 3};
    std::vector<std::uint32_t> dst = {1, 2, 5};
    PramCost cost(2);
    monotone_route<Record>(items, src, dst, out, &cost);
    EXPECT_EQ(out[1].key, 10u);
    EXPECT_EQ(out[2].key, 30u);
    EXPECT_EQ(out[5].key, 40u);
    EXPECT_GT(cost.steps(), 0u);
}

TEST(MonotoneRoute, RejectsNonMonotone) {
    std::vector<Record> items = {{1, 0}, {2, 1}};
    std::vector<Record> out(2);
    std::vector<std::uint32_t> src = {0, 1};
    std::vector<std::uint32_t> dst = {1, 0}; // decreasing: illegal
    EXPECT_THROW(monotone_route<Record>(items, src, dst, out, nullptr), ModelViolation);
}

TEST(MonotoneRoute, Compaction) {
    std::vector<Record> items(10);
    for (std::size_t i = 0; i < 10; ++i) items[i] = {i, i};
    std::vector<std::uint8_t> keep = {1, 0, 0, 1, 1, 0, 0, 0, 1, 0};
    std::vector<Record> out(10);
    const std::size_t n = monotone_compact<Record>(items, keep, out, nullptr);
    EXPECT_EQ(n, 4u);
    EXPECT_EQ(out[0].key, 0u);
    EXPECT_EQ(out[1].key, 3u);
    EXPECT_EQ(out[2].key, 4u);
    EXPECT_EQ(out[3].key, 8u);
}

TEST(Selection, SelectKth) {
    std::vector<std::uint64_t> v = {9, 3, 7, 1, 5};
    EXPECT_EQ(select_kth(v, 1), 1u);
    EXPECT_EQ(select_kth(v, 3), 5u);
    EXPECT_EQ(select_kth(v, 5), 9u);
    EXPECT_THROW(select_kth(v, 0), std::invalid_argument);
    EXPECT_THROW(select_kth(v, 6), std::invalid_argument);
}

TEST(Selection, MatchesSortOnRandomInputs) {
    Xoshiro256 rng(77);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 1 + rng.below(200);
        std::vector<std::uint64_t> v(n);
        for (auto& x : v) x = rng.below(50); // duplicates likely
        std::vector<std::uint64_t> sorted = v;
        std::sort(sorted.begin(), sorted.end());
        const std::size_t k = 1 + rng.below(n);
        EXPECT_EQ(select_kth(v, k), sorted[k - 1]);
    }
}

TEST(Selection, PaperMedianConvention) {
    // Footnote 3: the median is the ceil(n/2)-th *smallest*, not the
    // statistics convention.
    std::vector<std::uint64_t> even = {1, 2, 3, 4};
    EXPECT_EQ(paper_median(even), 2u); // ceil(4/2)=2nd smallest
    std::vector<std::uint64_t> odd = {5, 1, 9};
    EXPECT_EQ(paper_median(odd), 5u);
    std::vector<std::uint64_t> one = {42};
    EXPECT_EQ(paper_median(one), 42u);
}

TEST(Selection, MultiSelectMatchesSortedRanks) {
    Xoshiro256 rng(31);
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t n = 5 + rng.below(500);
        std::vector<Record> recs(n);
        for (auto& r : recs) r.key = rng.below(1000); // duplicates likely
        std::vector<Record> sorted = recs;
        std::sort(sorted.begin(), sorted.end(), KeyLess{});
        // random strictly increasing ranks
        const std::size_t k = 1 + rng.below(std::min<std::size_t>(n, 8));
        std::set<std::uint64_t> rank_set;
        while (rank_set.size() < k) rank_set.insert(1 + rng.below(n));
        std::vector<std::uint64_t> ranks(rank_set.begin(), rank_set.end());
        std::vector<Record> scratch = recs;
        auto keys = multi_select_keys(scratch, ranks);
        ASSERT_EQ(keys.size(), ranks.size());
        for (std::size_t i = 0; i < ranks.size(); ++i) {
            EXPECT_EQ(keys[i], sorted[ranks[i] - 1].key) << "trial " << trial;
        }
    }
}

TEST(Selection, MultiSelectValidation) {
    std::vector<Record> recs(10);
    std::vector<std::uint64_t> bad_order = {5, 3};
    EXPECT_THROW(multi_select_keys(recs, bad_order), std::invalid_argument);
    std::vector<std::uint64_t> out_of_range = {11};
    EXPECT_THROW(multi_select_keys(recs, out_of_range), std::invalid_argument);
    std::vector<std::uint64_t> zero = {0};
    EXPECT_THROW(multi_select_keys(recs, zero), std::invalid_argument);
    std::vector<std::uint64_t> empty;
    EXPECT_TRUE(multi_select_keys(recs, empty).empty());
}

TEST(Selection, MultiSelectIsLinearish) {
    // O(n log k) comparisons: for k = 8 this is far below n log n.
    WorkMeter meter;
    std::vector<Record> recs(20000);
    Xoshiro256 rng(7);
    for (auto& r : recs) r.key = rng();
    std::vector<std::uint64_t> ranks = {2500, 5000, 7500, 10000, 12500, 15000, 17500, 20000};
    multi_select_keys(recs, ranks, &meter);
    EXPECT_LT(meter.comparisons(), 20000u * 16u); // << n log2 n ~ 14.3 n... but well under sort+const
}

TEST(Selection, CountsWork) {
    WorkMeter meter;
    std::vector<std::uint64_t> v(500);
    Xoshiro256 rng(5);
    for (auto& x : v) x = rng();
    select_kth(v, 250, &meter);
    EXPECT_GT(meter.ops(), 0u);
    // Linear-time selection: work should be O(n), well under n log^2 n.
    EXPECT_LT(meter.ops(), 500u * 90u);
}

class ParallelSortTest : public ::testing::TestWithParam<std::tuple<Workload, std::size_t, int>> {
};

TEST_P(ParallelSortTest, MergeSortSortsEverything) {
    auto [w, n, threads] = GetParam();
    Executor exec(static_cast<std::size_t>(threads > 1 ? threads - 1 : 1));
    Parallel pool(static_cast<std::size_t>(threads), &exec);
    auto in = generate(w, n, 123);
    auto data = in;
    WorkMeter meter;
    PramCost cost(static_cast<std::uint64_t>(threads));
    parallel_merge_sort(data, pool, &meter, &cost);
    EXPECT_TRUE(is_sorted_permutation_of(in, data)) << to_string(w) << " n=" << n;
    if (n > 1) {
        EXPECT_GT(meter.ops(), 0u);
        EXPECT_GT(cost.steps(), 0u);
    }
}

TEST_P(ParallelSortTest, RadixSortSortsEverything) {
    auto [w, n, threads] = GetParam();
    Executor exec(static_cast<std::size_t>(threads > 1 ? threads - 1 : 1));
    Parallel pool(static_cast<std::size_t>(threads), &exec);
    auto in = generate(w, n, 321);
    auto data = in;
    parallel_radix_sort(data, pool);
    EXPECT_TRUE(is_sorted_permutation_of(in, data)) << to_string(w) << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelSortTest,
    ::testing::Combine(::testing::Values(Workload::kUniform, Workload::kSorted,
                                         Workload::kReverse, Workload::kDuplicateHeavy,
                                         Workload::kOrganPipe, Workload::kAllEqual),
                       ::testing::Values(std::size_t{0}, std::size_t{1}, std::size_t{2},
                                         std::size_t{17}, std::size_t{1000}),
                       ::testing::Values(1, 4)));

TEST(ParallelSort, MergeSortIsStableOnKeys) {
    // Equal keys keep their input order (payload ascending given our
    // generator assigns payload = index).
    std::vector<Record> data(100);
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = {i % 5, i};
    Executor exec(3);
    Parallel pool(4, &exec);
    parallel_merge_sort(data, pool);
    for (std::size_t i = 1; i < data.size(); ++i) {
        if (data[i].key == data[i - 1].key) {
            EXPECT_LT(data[i - 1].payload, data[i].payload);
        }
    }
}

TEST(ParallelSort, BinaryMerge) {
    std::vector<Record> a = {{1, 0}, {4, 0}, {9, 0}};
    std::vector<Record> b = {{2, 0}, {3, 0}, {10, 0}};
    std::vector<Record> out(6);
    binary_merge(a, b, out);
    EXPECT_TRUE(is_sorted_by_key(out));
    EXPECT_THROW(binary_merge(a, b, std::span<Record>(out.data(), 5)), std::invalid_argument);
}

TEST(ParallelSort, MultiwayMerge) {
    std::vector<std::vector<Record>> runs_data;
    Xoshiro256 rng(9);
    std::vector<Record> all;
    for (int r = 0; r < 7; ++r) {
        std::vector<Record> run(20 + rng.below(30));
        for (auto& rec : run) rec = {rng.below(1000), 0};
        std::sort(run.begin(), run.end(), KeyLess{});
        all.insert(all.end(), run.begin(), run.end());
        runs_data.push_back(std::move(run));
    }
    std::vector<std::span<const Record>> runs;
    for (const auto& r : runs_data) runs.emplace_back(r);
    std::vector<Record> out(all.size());
    WorkMeter meter;
    multiway_merge(runs, out, &meter);
    EXPECT_TRUE(is_sorted_by_key(out));
    std::sort(all.begin(), all.end(), KeyLess{});
    for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(out[i].key, all[i].key);
    EXPECT_GT(meter.comparisons(), 0u);
}

TEST(ParallelSort, MultiwayMergeEdgeCases) {
    std::vector<std::span<const Record>> empty_runs;
    std::vector<Record> out;
    multiway_merge(empty_runs, out); // no-op
    std::vector<Record> single = {{3, 0}, {5, 0}};
    std::vector<std::span<const Record>> one_run = {std::span<const Record>(single)};
    out.resize(2);
    multiway_merge(one_run, out);
    EXPECT_EQ(out[0].key, 3u);
}

TEST(ParallelSort, BucketOf) {
    std::vector<Record> recs = {{0, 0}, {5, 0}, {10, 0}, {15, 0}, {20, 0}};
    std::vector<std::uint64_t> pivots = {5, 15};
    auto idx = bucket_of(recs, pivots);
    // upper_bound semantics: key < 5 -> 0, 5 <= key < 15 -> 1, >= 15 -> 2.
    EXPECT_EQ(idx, (std::vector<std::uint32_t>{0, 1, 1, 2, 2}));
}

TEST(PramCost, ChargesMatchModel) {
    PramCost erew(8, PramKind::kErew);
    erew.charge_parallel_work(80);
    EXPECT_EQ(erew.steps(), 10u);
    erew.charge_collective();
    EXPECT_EQ(erew.steps(), 13u); // + ceil(log2 8) = 3
    PramCost crcw(8, PramKind::kCrcw);
    crcw.charge_collective();
    EXPECT_EQ(crcw.steps(), 1u);
}

TEST(WorkMeter, PramTimeFormula) {
    WorkMeter m;
    m.add_comparisons(700);
    m.add_moves(300);
    m.add_collectives(10);
    // ops/P + collectives * log2(P): 1000/4 + 10*2 = 270.
    EXPECT_DOUBLE_EQ(m.pram_time(4), 270.0);
    m.reset();
    EXPECT_EQ(m.ops(), 0u);
}

TEST(WorkMeter, CountingLessCounts) {
    WorkMeter m;
    CountingLess<KeyLess> less(KeyLess{}, &m);
    Record a{1, 0}, b{2, 0};
    EXPECT_TRUE(less(a, b));
    EXPECT_FALSE(less(b, a));
    EXPECT_EQ(m.comparisons(), 2u);
}

} // namespace
} // namespace balsort
