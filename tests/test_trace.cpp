// Tests for the IoTrace recorder and its analyses.
#include <gtest/gtest.h>

#include "core/balance_sort.hpp"
#include "pdm/trace.hpp"
#include "util/workload.hpp"

namespace balsort {
namespace {

TEST(IoTrace, RecordsStepsExactly) {
    DiskArray disks(4, 2);
    IoTrace trace;
    trace.attach(disks);
    std::vector<Record> buf(4, Record{1, 1});
    std::vector<BlockOp> ops = {{0, 0}, {2, 0}};
    disks.write_step(ops, buf);
    std::vector<Record> in(4);
    disks.read_step(ops, in);
    trace.detach();
    ASSERT_EQ(trace.steps().size(), 2u);
    EXPECT_FALSE(trace.steps()[0].is_read);
    EXPECT_TRUE(trace.steps()[1].is_read);
    EXPECT_EQ(trace.steps()[0].ops.size(), 2u);
    EXPECT_EQ(trace.read_steps(), 1u);
    EXPECT_EQ(trace.write_steps(), 1u);
    // Detached: further steps are not recorded.
    disks.write_step(ops, buf);
    EXPECT_EQ(trace.steps().size(), 2u);
}

TEST(IoTrace, Analyses) {
    DiskArray disks(2, 2);
    IoTrace trace;
    trace.attach(disks);
    std::vector<Record> buf2(4, Record{1, 1});
    std::vector<Record> buf1(2, Record{1, 1});
    // Step 1: both disks, blocks 0 (sequential baseline starts here).
    disks.write_step(std::vector<BlockOp>{{0, 0}, {1, 0}}, buf2);
    // Step 2: disk 0 only, block 1 (sequential on disk 0).
    disks.write_step(std::vector<BlockOp>{{0, 1}}, buf1);
    // Step 3: disk 0 only, block 5 (jump).
    disks.write_step(std::vector<BlockOp>{{0, 5}}, buf1);
    trace.detach();
    EXPECT_DOUBLE_EQ(trace.mean_parallelism(), 4.0 / 3.0);
    auto per = trace.per_disk_blocks(2);
    EXPECT_EQ(per[0], 3u);
    EXPECT_EQ(per[1], 1u);
    EXPECT_DOUBLE_EQ(trace.disk_imbalance(2), 3.0);
    // Sequential accesses: disk0 block1 after block0 -> 1 of 4 total.
    EXPECT_DOUBLE_EQ(trace.sequential_fraction(2), 0.25);
    auto hist = trace.parallelism_histogram(2);
    EXPECT_EQ(hist[1], 2u);
    EXPECT_EQ(hist[2], 1u);
}

TEST(IoTrace, ChainsOntoExistingObserver) {
    // Attaching over an already-installed observer (e.g. the hierarchy
    // meter's) must forward every step to it and restore it on detach —
    // not clobber it.
    DiskArray disks(2, 2);
    std::uint64_t prior_steps = 0;
    disks.set_step_observer(
        [&prior_steps](bool, std::span<const BlockOp>) { ++prior_steps; });
    IoTrace trace;
    trace.attach(disks);
    std::vector<Record> buf(2, Record{1, 1});
    std::vector<BlockOp> ops = {{0, 0}};
    disks.write_step(ops, buf);
    std::vector<Record> in(2);
    disks.read_step(ops, in);
    EXPECT_EQ(trace.steps().size(), 2u); // the trace recorded...
    EXPECT_EQ(prior_steps, 2u);          // ...and the prior observer still fired
    trace.detach();
    // Detach restores the prior observer rather than clearing it.
    disks.write_step(ops, buf);
    EXPECT_EQ(trace.steps().size(), 2u);
    EXPECT_EQ(prior_steps, 3u);
}

TEST(IoTrace, DoubleAttachRejected) {
    DiskArray a(2, 2), b(2, 2);
    IoTrace trace;
    trace.attach(a);
    EXPECT_THROW(trace.attach(b), std::invalid_argument);
    trace.detach();
    EXPECT_NO_THROW(trace.attach(b));
}

TEST(IoTrace, BalanceSortTrafficIsBalancedAndParallel) {
    PdmConfig cfg{.n = 1 << 15, .m = 1 << 10, .d = 8, .b = 8, .p = 1};
    DiskArray disks(cfg.d, cfg.b);
    auto input = generate(Workload::kUniform, cfg.n, 9);
    BlockRun run = write_striped(disks, input);
    IoTrace trace;
    trace.attach(disks);
    (void)balance_sort(disks, run, cfg, {}, nullptr);
    trace.detach();
    // The paper's whole point, visible in the trace: near-D parallelism
    // and near-1 disk balance.
    EXPECT_GT(trace.mean_parallelism(), 0.75 * cfg.d);
    EXPECT_LT(trace.disk_imbalance(cfg.d), 1.2);
}

} // namespace
} // namespace balsort
