// Tests for src/hierarchy + core/hier_sort: the HMM/BT/UMH access models,
// the parallel-hierarchy meter, and Balance Sort on P-HMM/P-BT/P-UMH
// (Theorems 2-3 observables).
#include <gtest/gtest.h>

#include "core/hier_sort.hpp"
#include "hierarchy/access_model.hpp"
#include "hierarchy/meter.hpp"
#include "util/workload.hpp"

namespace balsort {
namespace {

TEST(CostFn, LogAndPower) {
    CostFn lg = CostFn::log();
    EXPECT_DOUBLE_EQ(lg(1.0), 1.0);
    EXPECT_DOUBLE_EQ(lg(8.0), 3.0);
    EXPECT_DOUBLE_EQ(lg(0.5), 1.0); // clamp
    CostFn sq = CostFn::power(0.5);
    EXPECT_DOUBLE_EQ(sq(16.0), 4.0);
    EXPECT_DOUBLE_EQ(sq(0.25), 1.0); // clamp
    EXPECT_THROW(CostFn::power(0.0), std::invalid_argument);
    EXPECT_EQ(lg.name(), "log x");
}

TEST(HmmModel, ChargesFOfDepth) {
    HmmModel m(CostFn::log());
    EXPECT_DOUBLE_EQ(m.access(0, 0), 1.0);   // f(1)
    EXPECT_DOUBLE_EQ(m.access(0, 7), 3.0);   // f(8)
    EXPECT_DOUBLE_EQ(m.access(3, 7), 3.0);   // lane-independent
    // History-independent: same depth, same cost.
    EXPECT_DOUBLE_EQ(m.access(0, 7), 3.0);
}

TEST(BtModel, StreamDetection) {
    BtModel m(CostFn::power(1.0), /*lanes=*/2);
    // First touch: latency f(1024+1)+1.
    EXPECT_NEAR(m.access(0, 1023), 1025.0, 1e-9);
    // Sequential forward: 1 per access.
    EXPECT_DOUBLE_EQ(m.access(0, 1024), 1.0);
    EXPECT_DOUBLE_EQ(m.access(0, 1025), 1.0);
    // Long jump: latency (cheaper than sweeping the whole gap back).
    EXPECT_NEAR(m.access(0, 9), 11.0, 1e-9);
    // Backward streaming also counts as sequential.
    EXPECT_DOUBLE_EQ(m.access(0, 8), 1.0);
    // Short forward gap: sweeping beats a fresh latency (min rule).
    EXPECT_DOUBLE_EQ(m.access(0, 11), 3.0); // gap 3 < f(12)+1 = 13
    // Gap exactly tied or beyond: latency wins.
    EXPECT_NEAR(m.access(0, 1000), 989.0, 1e-9); // min(989, f(1001)+1=1002)
    // Lanes track independent streams.
    EXPECT_NEAR(m.access(1, 1024), 1026.0, 1e-9);
    m.reset();
    EXPECT_NEAR(m.access(0, 9), 11.0, 1e-9); // state cleared
}

TEST(UmhModel, LevelsAndCosts) {
    UmhModel m(4.0, 1.0);
    EXPECT_EQ(m.level_of(0), 0u);
    EXPECT_EQ(m.level_of(1), 1u);
    EXPECT_EQ(m.level_of(3), 1u);
    EXPECT_EQ(m.level_of(4), 2u);
    EXPECT_EQ(m.level_of(63), 3u);
    EXPECT_EQ(m.level_of(64), 4u);
    // nu = 1: one unit per bus crossed.
    EXPECT_DOUBLE_EQ(m.access(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(m.access(0, 63), 3.0);
    // nu = 0.5: geometric sum 2 + 4 + 8 = 14 for level 3.
    UmhModel decay(4.0, 0.5);
    EXPECT_NEAR(decay.access(0, 63), 14.0, 1e-9);
    EXPECT_THROW(UmhModel(1.0, 1.0), std::invalid_argument);
    EXPECT_THROW(UmhModel(4.0, 0.0), std::invalid_argument);
}

TEST(Meter, PricesStepsByWorstLane) {
    auto model = std::make_unique<HmmModel>(CostFn::log());
    HierarchyMeter meter(std::move(model), Interconnect::kPram, 4);
    std::vector<BlockOp> ops = {{0, 0}, {1, 255}, {2, 3}};
    meter.on_step(true, ops);
    // worst lane: f(256) = 8; interconnect: log2(4) = 2.
    EXPECT_DOUBLE_EQ(meter.hierarchy_time(), 8.0);
    EXPECT_DOUBLE_EQ(meter.interconnect_charges(), 2.0);
    EXPECT_DOUBLE_EQ(meter.total_time(), 10.0);
    EXPECT_EQ(meter.tracks(), 1u);
    meter.charge_interconnect_units(3.0);
    EXPECT_DOUBLE_EQ(meter.interconnect_charges(), 8.0);
    meter.reset();
    EXPECT_DOUBLE_EQ(meter.total_time(), 0.0);
}

TEST(Meter, InterconnectFunctions) {
    EXPECT_DOUBLE_EQ(interconnect_time(Interconnect::kPram, 256.0), 8.0);
    EXPECT_DOUBLE_EQ(interconnect_time(Interconnect::kHypercube, 256.0), 8.0 * 3.0 * 3.0);
    EXPECT_DOUBLE_EQ(interconnect_time(Interconnect::kHypercubePrecomp, 256.0), 24.0);
    EXPECT_STREQ(to_string(Interconnect::kPram), "EREW-PRAM");
}

struct HierCase {
    HierModelSpec spec;
    Interconnect ic;
    const char* label;
};

class HierSortTest : public ::testing::TestWithParam<HierCase> {};

TEST_P(HierSortTest, SortsOnEveryModel) {
    const auto& hc = GetParam();
    HierSortConfig cfg;
    cfg.h = 16;
    cfg.model = hc.spec;
    cfg.interconnect = hc.ic;
    auto input = generate(Workload::kUniform, 3000, 71);
    HierSortReport rep;
    auto sorted = hier_sort(input, cfg, &rep);
    EXPECT_TRUE(is_sorted_permutation_of(input, sorted)) << hc.label;
    EXPECT_GT(rep.total_time, 0.0);
    EXPECT_GT(rep.tracks, 0u);
    EXPECT_GT(rep.formula, 0.0);
    EXPECT_TRUE(rep.mechanics.balance.invariant2_held);
}

INSTANTIATE_TEST_SUITE_P(
    Models, HierSortTest,
    ::testing::Values(
        HierCase{HierModelSpec::hmm(CostFn::log()), Interconnect::kPram, "phmm_log_pram"},
        HierCase{HierModelSpec::hmm(CostFn::power(0.5)), Interconnect::kPram, "phmm_pow_pram"},
        HierCase{HierModelSpec::hmm(CostFn::log()), Interconnect::kHypercube, "phmm_log_hc"},
        HierCase{HierModelSpec::bt(CostFn::log()), Interconnect::kPram, "pbt_log_pram"},
        HierCase{HierModelSpec::bt(CostFn::power(0.5)), Interconnect::kPram, "pbt_a05_pram"},
        HierCase{HierModelSpec::bt(CostFn::power(1.0)), Interconnect::kPram, "pbt_a1_pram"},
        HierCase{HierModelSpec::bt(CostFn::power(1.5)), Interconnect::kHypercube, "pbt_a15_hc"},
        HierCase{HierModelSpec::umh(4.0, 1.0), Interconnect::kPram, "pumh_pram"},
        HierCase{HierModelSpec::umh(4.0, 0.5), Interconnect::kPram, "pumh_decay"}),
    [](const auto& pinfo) { return pinfo.param.label; });

TEST(HierSort, WorksAcrossSizesAndH) {
    for (std::uint32_t h : {4u, 8u, 64u}) {
        for (std::uint64_t n : {std::uint64_t{10}, std::uint64_t{3 * h},
                                std::uint64_t{1000}}) {
            HierSortConfig cfg;
            cfg.h = h;
            cfg.model = HierModelSpec::hmm(CostFn::log());
            auto input = generate(Workload::kGaussian, n, h + n);
            auto sorted = hier_sort(input, cfg, nullptr);
            EXPECT_TRUE(is_sorted_permutation_of(input, sorted)) << "h=" << h << " n=" << n;
        }
    }
}

TEST(HierSort, RatioStableInN_PHmmLog) {
    // Theorem 2 shape check: charged time / formula stays within a small
    // band while N grows 16x.
    double lo = 1e18, hi = 0;
    for (std::uint64_t n : {std::uint64_t{4096}, std::uint64_t{16384},
                            std::uint64_t{65536}}) {
        HierSortConfig cfg;
        cfg.h = 64;
        cfg.model = HierModelSpec::hmm(CostFn::log());
        auto input = generate(Workload::kUniform, n, n);
        HierSortReport rep;
        auto sorted = hier_sort(input, cfg, &rep);
        ASSERT_TRUE(is_sorted_by_key(sorted));
        lo = std::min(lo, rep.ratio);
        hi = std::max(hi, rep.ratio);
    }
    EXPECT_LT(hi / lo, 4.0) << "P-HMM ratio drifted: " << lo << " .. " << hi;
}

TEST(HierSort, BtBenefitsFromStreaming) {
    // At equal f, the BT model (block transfer amortization) must charge
    // strictly less than HMM for the same sort: the sequential phases
    // (run formation scans, appends) stream at unit cost. The win is
    // bounded here because bucket reads jump between interleaved block
    // ranges — the paper's §4.4 repositioning/touch machinery would
    // amortize those too (documented deviation, EXPERIMENTS.md).
    const auto input = generate(Workload::kUniform, 8000, 5);
    auto run = [&](HierModelSpec spec) {
        HierSortConfig cfg;
        cfg.h = 16;
        cfg.model = spec;
        HierSortReport rep;
        auto sorted = hier_sort(input, cfg, &rep);
        EXPECT_TRUE(is_sorted_by_key(sorted));
        return rep.hierarchy_time;
    };
    const double hmm = run(HierModelSpec::hmm(CostFn::power(1.0)));
    const double bt = run(HierModelSpec::bt(CostFn::power(1.0)));
    EXPECT_LT(bt, hmm * 0.8);
}

TEST(HierSort, HierBucketCount) {
    // Square-root decomposition: S = sqrt(N/H') -> loglog recursion depth.
    EXPECT_EQ(hier_bucket_count(1 << 20, 4), 512u);
    EXPECT_EQ(hier_bucket_count(100, 64), 2u); // sqrt(100/64) ~ 1.25, clamped
    EXPECT_EQ(hier_bucket_count(1 << 12, 4), 32u);
    EXPECT_GE(hier_bucket_count(2, 64), 2u); // clamped minimum
}

TEST(HierSort, TheoremFormulaShapes) {
    // Monotone in N; hypercube never cheaper than PRAM.
    for (std::uint64_t n : {std::uint64_t{1} << 12, std::uint64_t{1} << 16}) {
        EXPECT_LT(theorem2_time_log(n, 64, Interconnect::kPram),
                  theorem2_time_log(4 * n, 64, Interconnect::kPram));
        EXPECT_LE(theorem2_time_log(n, 64, Interconnect::kPram),
                  theorem2_time_log(n, 64, Interconnect::kHypercube));
        EXPECT_LE(theorem3_time_log(n, 64, Interconnect::kPram),
                  theorem3_time_log(n, 64, Interconnect::kHypercube));
    }
    // Theorem 3's alpha regimes: alpha < 1 behaves like the log case
    // ((N/H) log N); alpha > 1 adds the polynomial term.
    const std::uint64_t n = 1 << 16;
    EXPECT_DOUBLE_EQ(theorem3_time_power(n, 64, 0.5, Interconnect::kPram),
                     theorem3_time_log(n, 64, Interconnect::kPram));
    EXPECT_GT(theorem3_time_power(n, 16, 2.0, Interconnect::kPram),
              theorem3_time_power(n, 16, 0.5, Interconnect::kPram));
    // Theorem 2 power includes the (N/H)^(alpha+1) term.
    EXPECT_GT(theorem2_time_power(n, 16, 1.0, Interconnect::kPram),
              std::pow(static_cast<double>(n) / 16.0, 2.0) * 0.99);
}

TEST(HierSort, ModelSpecNamesAndFactory) {
    EXPECT_EQ(HierModelSpec::hmm(CostFn::log()).name(), "P-HMM[f=log x]");
    EXPECT_EQ(HierModelSpec::bt(CostFn::log()).name(), "P-BT[f=log x]");
    EXPECT_EQ(HierModelSpec::umh(4, 1).name(), "P-UMH");
    auto m = HierModelSpec::bt(CostFn::log()).make(8);
    EXPECT_NE(dynamic_cast<BtModel*>(m.get()), nullptr);
}

TEST(HierSort, TinyInputs) {
    HierSortConfig cfg;
    cfg.h = 8;
    auto one = hier_sort({Record{5, 0}}, cfg, nullptr);
    ASSERT_EQ(one.size(), 1u);
    auto zero = hier_sort({}, cfg, nullptr);
    EXPECT_TRUE(zero.empty());
}

} // namespace
} // namespace balsort
