// Chaos-replay harness (DESIGN.md §13): kill a checkpointing sort at every
// phase/bucket boundary — and at seeded random parallel I/O steps — with
// real process kills (fork + _exit), resume it in a fresh process that
// adopts the crashed run's scratch files, and assert the recovered run is
// indistinguishable from an uninterrupted one: byte-identical output hash
// and identical model accounting (read/write steps, block counts,
// cumulative checkpoint sequence). A chained scenario crashes twice across
// two resume generations. Finally, a scheduled-hang scenario must complete
// through the deadline -> parity failover with io.timeouts > 0 recorded in
// the run manifest.
//
// Usage: chaos_replay [--seed N] [--dir PATH]
// Exit status 0 = every scenario held.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/balance_sort.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/run_manifest.hpp"
#include "pdm/disk_array.hpp"
#include "pdm/striping.hpp"
#include "util/random.hpp"
#include "util/workload.hpp"

namespace fs = std::filesystem;
using namespace balsort;

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
constexpr int kKillExit = 137; // the classic SIGKILL-style status

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
        h ^= (x >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

const PdmConfig kCfg{.n = 2500, .m = 512, .d = 4, .b = 8, .p = 2};
constexpr std::uint64_t kInputSeed = 4242;

int failures = 0;

void check(bool ok, const std::string& what) {
    if (!ok) {
        std::cerr << "FAIL: " << what << "\n";
        ++failures;
    }
}

struct Result {
    std::uint64_t out_hash = 0, read_steps = 0, write_steps = 0;
    std::uint64_t blocks_read = 0, blocks_written = 0;
    std::uint64_t checkpoints = 0, resumes = 0;
};

/// The sort under chaos, run inside a forked child. Crashes via _exit at
/// the requested boundary sequence number or observer step count; on a
/// clean finish, writes the Result to `result_path` and exits 0.
[[noreturn]] void child_main(const fs::path& dir, bool resume, std::uint64_t kill_boundary,
                             std::uint64_t kill_step, const fs::path& result_path) {
    ScratchOptions scratch;
    scratch.tag = "chaos";
    scratch.adopt = resume;
    scratch.keep = true; // a crash must leave the blocks behind
    DiskArray disks(kCfg.d, kCfg.b, DiskBackend::kFile, dir.string(),
                    Constraint::kIndependentDisks, {}, {}, scratch);
    std::uint64_t steps = 0;
    disks.set_step_observer([&steps, kill_step](bool, std::span<const BlockOp>) {
        if (kill_step != 0 && ++steps == kill_step) ::_exit(kKillExit);
    });
    auto records = generate(Workload::kUniform, kCfg.n, kInputSeed);
    // The input layout is deterministic, so the resuming generation simply
    // re-lays it out: identical blocks land at identical indices before
    // restore() rewinds the allocator to the checkpointed cut.
    const BlockRun input = write_striped(disks, records);
    SortOptions opt;
    opt.checkpoint_path = (dir / "chaos.ck").string();
    if (resume && fs::exists(opt.checkpoint_path)) opt.resume_from = opt.checkpoint_path;
    if (kill_boundary != 0) {
        opt.on_checkpoint = [kill_boundary](std::uint64_t seq) {
            if (seq == kill_boundary) ::_exit(kKillExit);
        };
    }
    SortReport rep;
    const BlockRun out = balance_sort(disks, input, kCfg, opt, &rep);
    Result r;
    r.out_hash = kFnvOffset;
    for (const Record& rec : read_run(disks, out)) {
        r.out_hash = fnv1a(r.out_hash, rec.key);
        r.out_hash = fnv1a(r.out_hash, rec.payload);
    }
    r.read_steps = rep.io.read_steps;
    r.write_steps = rep.io.write_steps;
    r.blocks_read = rep.io.blocks_read;
    r.blocks_written = rep.io.blocks_written;
    r.checkpoints = rep.checkpoints_written;
    r.resumes = rep.resumes;
    std::ofstream os(result_path, std::ios::trunc);
    os << r.out_hash << ' ' << r.read_steps << ' ' << r.write_steps << ' ' << r.blocks_read
       << ' ' << r.blocks_written << ' ' << r.checkpoints << ' ' << r.resumes << '\n';
    os.close();
    ::_exit(os ? 0 : 66);
}

/// Fork, run child_main, reap; returns the child's exit status (or -1 if
/// it died on a signal).
int spawn(const fs::path& dir, bool resume, std::uint64_t kill_boundary, std::uint64_t kill_step,
          const fs::path& result_path) {
    const pid_t pid = ::fork();
    if (pid < 0) {
        std::cerr << "fork failed: " << std::strerror(errno) << "\n";
        std::exit(2);
    }
    if (pid == 0) child_main(dir, resume, kill_boundary, kill_step, result_path);
    int status = 0;
    ::waitpid(pid, &status, 0);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

Result read_result(const fs::path& result_path) {
    std::ifstream is(result_path);
    Result r;
    is >> r.out_hash >> r.read_steps >> r.write_steps >> r.blocks_read >> r.blocks_written >>
        r.checkpoints >> r.resumes;
    check(static_cast<bool>(is), "result file unreadable: " + result_path.string());
    return r;
}

/// Wipe one scenario's durable state: checkpoint + scratch block files.
void reset(const fs::path& dir) {
    for (const auto& entry : fs::directory_iterator(dir)) {
        fs::remove_all(entry.path());
    }
}

void expect_matches_golden(const Result& r, const Result& golden, const std::string& label) {
    check(r.out_hash == golden.out_hash, label + ": output hash differs");
    check(r.read_steps == golden.read_steps, label + ": read_steps differ");
    check(r.write_steps == golden.write_steps, label + ": write_steps differ");
    check(r.blocks_read == golden.blocks_read, label + ": blocks_read differ");
    check(r.blocks_written == golden.blocks_written, label + ": blocks_written differ");
    check(r.checkpoints == golden.checkpoints, label + ": checkpoint seq not cumulative");
}

/// Scheduled hangs + read deadline: the sort must complete through parity
/// failover, never block, and surface the timeouts in the manifest.
void hang_scenario(const fs::path& dir) {
    FaultTolerance ft;
    ft.inject.seed = 77;
    ft.inject.hang_every_ops = 50;
    ft.inject.hang_duration_us = 30000;
    ft.deadline_us = 2000;
    ft.parity = true;
    ft.checksums = true;
    MetricsRegistry reg;
    DiskArray disks(kCfg.d, kCfg.b, DiskBackend::kFile, dir.string(),
                    Constraint::kIndependentDisks, ft);
    auto records = generate(Workload::kUniform, kCfg.n, kInputSeed);
    SortOptions opt;
    opt.metrics = &reg;
    SortReport rep;
    const auto sorted = balance_sort_records(disks, std::move(records), kCfg, opt, &rep);
    check(std::is_sorted(sorted.begin(), sorted.end(),
                         [](const Record& a, const Record& b) { return a.key < b.key; }),
          "hang scenario: output not sorted");
    check(rep.io.io_timeouts > 0, "hang scenario: no deadline ever fired");
    RunManifest manifest;
    manifest.tool = "chaos_replay";
    manifest.algo = "balance";
    manifest.cfg = kCfg;
    manifest.report = rep;
    manifest.metrics = &reg;
    const std::string json = manifest.to_json();
    const auto pos = json.find("\"io_timeouts\":");
    check(pos != std::string::npos, "hang scenario: manifest lacks io_timeouts");
    if (pos != std::string::npos) {
        check(json.compare(pos, 16, "\"io_timeouts\":0,") != 0 &&
                  json.compare(pos, 16, "\"io_timeouts\":0}") != 0,
              "hang scenario: manifest io_timeouts is zero");
    }
    std::cout << "hang scenario: " << rep.io.io_timeouts << " timeouts, "
              << rep.io.reconstructions << " reconstructions\n";
}

#ifndef BALSORT_NO_OBS
/// Flight recorder (DESIGN.md §16): a deadline expiry mid-sort must
/// auto-dump every thread's recent trace ring to the configured path — the
/// post-mortem artifact the service relies on after a fault. The dump must
/// exist, be non-empty, and be well-formed Chrome-trace JSON (CI re-checks
/// it with `python3 -m json.tool`).
void flight_dump_scenario(const fs::path& dir) {
    const fs::path dump_path = dir / "flight.json";
    fs::remove(dump_path);
    FlightRecorder::instance().set_auto_dump_path(dump_path.string());

    FaultTolerance ft;
    ft.inject.seed = 77;
    ft.inject.hang_every_ops = 50;
    ft.inject.hang_duration_us = 30000;
    ft.deadline_us = 2000;
    ft.parity = true;
    ft.checksums = true;
    DiskArray disks(kCfg.d, kCfg.b, DiskBackend::kFile, dir.string(),
                    Constraint::kIndependentDisks, ft);
    auto records = generate(Workload::kUniform, kCfg.n, kInputSeed);
    SortReport rep;
    const auto sorted = balance_sort_records(disks, std::move(records), kCfg, {}, &rep);
    FlightRecorder::instance().set_auto_dump_path(""); // disarm for later scenarios

    check(sorted.size() == kCfg.n, "flight scenario: output size wrong");
    check(rep.io.io_timeouts > 0, "flight scenario: no deadline ever fired");
    // auto_dump() writes under a pid+ordinal-suffixed name so concurrent
    // failing processes can't clobber each other; the recorder reports
    // the actual path it wrote.
    const fs::path written = FlightRecorder::instance().last_auto_dump_path();
    check(!written.empty(), "flight scenario: no dump produced on deadline expiry");
    check(fs::exists(written), "flight scenario: reported dump path does not exist");
    check(written.parent_path() == dump_path.parent_path() &&
              written.filename().string().rfind("flight.", 0) == 0,
          "flight scenario: dump name not derived from the configured path");
    std::ifstream is(written);
    std::stringstream buf;
    buf << is.rdbuf();
    const std::string json = buf.str();
    check(json.size() > 2, "flight scenario: dump is empty");
    check(json.rfind("{\"traceEvents\":[", 0) == 0, "flight scenario: dump is not a trace JSON");
    check(json.find("io.deadline_expired") != std::string::npos,
          "flight scenario: dump lacks the deadline event");
    std::cout << "flight dump: " << json.size() << " bytes at " << written << "\n";
}
#endif

} // namespace

int main(int argc, char** argv) {
    std::uint64_t seed = 12345;
    fs::path dir;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--seed" && i + 1 < argc) {
            seed = std::stoull(argv[++i]);
        } else if (a == "--dir" && i + 1 < argc) {
            dir = argv[++i];
        } else {
            std::cerr << "usage: chaos_replay [--seed N] [--dir PATH]\n";
            return 2;
        }
    }
    if (dir.empty()) {
        dir = fs::temp_directory_path() / ("balsort_chaos_" + std::to_string(::getpid()));
    }
    fs::create_directories(dir);
    const fs::path result_path = dir / "result.txt";
    std::cout << "chaos_replay: seed " << seed << ", dir " << dir << "\n";

    // Golden: one uninterrupted checkpointing run.
    reset(dir);
    check(spawn(dir, false, 0, 0, result_path) == 0, "golden run failed");
    const Result golden = read_result(result_path);
    check(golden.checkpoints > 4, "config writes too few boundaries to be interesting");
    check(golden.resumes == 0, "golden run claims a resume");
    std::cout << "golden: " << golden.checkpoints << " boundaries, "
              << golden.read_steps + golden.write_steps << " io steps\n";

    // Kill at EVERY durable boundary, resume in a fresh process.
    for (std::uint64_t k = 1; k <= golden.checkpoints; ++k) {
        const std::string label = "boundary kill " + std::to_string(k);
        reset(dir);
        check(spawn(dir, false, k, 0, result_path) == kKillExit, label + ": child not killed");
        check(spawn(dir, true, 0, 0, result_path) == 0, label + ": resume failed");
        const Result r = read_result(result_path);
        expect_matches_golden(r, golden, label);
        check(r.resumes == 1, label + ": resume generation not counted");
    }
    std::cout << "boundary kills: " << golden.checkpoints << " scenarios ok\n";

    // Kill at seeded random parallel steps (mid-phase, between boundaries).
    Xoshiro256 rng(seed);
    const std::uint64_t step_span = golden.read_steps + golden.write_steps;
    for (int i = 0; i < 6; ++i) {
        const std::uint64_t s = 1 + rng() % step_span;
        const std::string label = "random kill at step " + std::to_string(s);
        reset(dir);
        const int status = spawn(dir, false, 0, s, result_path);
        if (status == 0) continue; // step count past this child's total: ran clean
        check(status == kKillExit, label + ": unexpected child status");
        check(spawn(dir, true, 0, 0, result_path) == 0, label + ": resume failed");
        const Result r = read_result(result_path);
        expect_matches_golden(r, golden, label);
        check(r.resumes <= 1, label + ": unexpected resume count");
    }
    std::cout << "random kills: ok\n";

    // Chained: two crashes across two resume generations.
    {
        const std::uint64_t k1 = std::max<std::uint64_t>(1, golden.checkpoints / 3);
        const std::uint64_t k2 = std::max(k1 + 1, 2 * golden.checkpoints / 3);
        reset(dir);
        check(spawn(dir, false, k1, 0, result_path) == kKillExit, "chained: first kill");
        check(spawn(dir, true, k2, 0, result_path) == kKillExit, "chained: second kill");
        check(spawn(dir, true, 0, 0, result_path) == 0, "chained: final resume failed");
        const Result r = read_result(result_path);
        expect_matches_golden(r, golden, "chained");
        check(r.resumes == 2, "chained: expected two resume generations");
        std::cout << "chained kill (" << k1 << ", " << k2 << "): ok\n";
    }

    reset(dir);
    hang_scenario(dir);

#ifndef BALSORT_NO_OBS
    reset(dir);
    flight_dump_scenario(dir);
#endif

    fs::remove_all(dir);
    if (failures != 0) {
        std::cerr << failures << " chaos check(s) failed (seed " << seed << ")\n";
        return 1;
    }
    std::cout << "chaos_replay: all scenarios held (seed " << seed << ")\n";
    return 0;
}
