// Tests for src/core/partition and Algorithm 2: pivot quality (bucket-size
// bounds), equal-class bucketing, stride formulas.
#include <gtest/gtest.h>

#include <map>

#include "core/hier_sort.hpp"
#include "core/partition.hpp"
#include "core/vrun.hpp"
#include "util/workload.hpp"

namespace balsort {
namespace {

TEST(PivotSet, BucketOfSemantics) {
    PivotSet p;
    p.keys = {10, 20, 30};
    EXPECT_EQ(p.n_buckets(), 7u);
    EXPECT_EQ(p.bucket_of(5), 0u);   // (-inf, 10)
    EXPECT_EQ(p.bucket_of(10), 1u);  // == 10
    EXPECT_EQ(p.bucket_of(15), 2u);  // (10, 20)
    EXPECT_EQ(p.bucket_of(20), 3u);
    EXPECT_EQ(p.bucket_of(25), 4u);
    EXPECT_EQ(p.bucket_of(30), 5u);
    EXPECT_EQ(p.bucket_of(31), 6u);  // (30, inf)
    EXPECT_TRUE(p.is_equal_class(1));
    EXPECT_FALSE(p.is_equal_class(2));
}

TEST(PivotSet, BucketOrderMatchesKeyOrder) {
    PivotSet p;
    p.keys = {100, 200};
    Xoshiro256 rng(1);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t a = rng.below(300), b = rng.below(300);
        if (a < b) {
            EXPECT_LE(p.bucket_of(a), p.bucket_of(b));
        }
    }
}

TEST(Partition, StrideFormula) {
    // t = max(ceil(M/(8S)), 1): 8S samples per sorted memoryload,
    // independent of N.
    EXPECT_EQ(sampling_stride(1 << 20, 1 << 16, 8), (1u << 16) / 64);
    EXPECT_EQ(sampling_stride(1 << 26, 1 << 10, 4), (1u << 10) / 32);
    EXPECT_EQ(sampling_stride(100, 2, 64), 1u); // floor at 1
    EXPECT_THROW(sampling_stride(100, 10, 1), std::invalid_argument);
}

TEST(Partition, SelectFromSortedSamples) {
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 100; ++i) samples.push_back(i);
    auto p = select_pivots_from_sorted_samples(samples, 4);
    EXPECT_EQ(p.keys.size(), 3u);
    EXPECT_EQ(p.keys[0], 25u);
    EXPECT_EQ(p.keys[1], 50u);
    EXPECT_EQ(p.keys[2], 75u);
    // Dedup: constant samples yield one pivot.
    std::vector<std::uint64_t> flat(50, 7);
    auto q = select_pivots_from_sorted_samples(flat, 8);
    EXPECT_EQ(q.keys.size(), 1u);
    EXPECT_EQ(q.keys[0], 7u);
    // Unsorted input rejected.
    std::vector<std::uint64_t> bad = {3, 1};
    EXPECT_THROW(select_pivots_from_sorted_samples(bad, 2), std::invalid_argument);
}

class PivotQualityTest : public ::testing::TestWithParam<std::tuple<Workload, std::uint32_t>> {};

TEST_P(PivotQualityTest, BucketSizesWithinBound) {
    auto [w, s_target] = GetParam();
    const std::uint64_t n = 40000, m = 2048;
    Parallel pool(2);
    auto recs = generate_distinct(w, n, 7);
    VectorSource src(recs);
    auto pivots = compute_pivots_sampling(src, n, m, s_target, pool);
    ASSERT_FALSE(pivots.keys.empty());
    // Count bucket sizes.
    std::vector<std::uint64_t> sizes(pivots.n_buckets(), 0);
    for (const auto& r : recs) sizes[pivots.bucket_of(r.key)]++;
    const std::uint64_t bound = bucket_size_bound(n, m, s_target);
    for (std::size_t b = 0; b < sizes.size(); ++b) {
        EXPECT_LE(sizes[b], bound) << to_string(w) << " bucket " << b;
    }
    // The paper's looser guarantee 0 < N_b < 2N/S also holds for the
    // combined open+equal range around each pivot.
    EXPECT_LE(bound, 2 * n / s_target + m);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PivotQualityTest,
    ::testing::Combine(::testing::Values(Workload::kUniform, Workload::kGaussian,
                                         Workload::kZipf, Workload::kSorted,
                                         Workload::kReverse, Workload::kOrganPipe),
                       ::testing::Values(2u, 4u, 8u, 16u)));

TEST(Partition, DuplicateHeavyKeysLandInEqualClasses) {
    const std::uint64_t n = 20000, m = 1024;
    Parallel pool(1);
    auto recs = generate(Workload::kDuplicateHeavy, n, 3); // 16 distinct keys
    VectorSource src(recs);
    auto pivots = compute_pivots_sampling(src, n, m, 8, pool);
    ASSERT_FALSE(pivots.keys.empty());
    // Every pivot key's mass sits in an equal-class bucket; open-range
    // buckets stay small even though keys repeat ~1250x each.
    std::map<std::uint32_t, std::uint64_t> open_sizes;
    for (const auto& r : recs) {
        const auto b = pivots.bucket_of(r.key);
        if (!pivots.is_equal_class(b)) open_sizes[b] += 1;
    }
    for (const auto& [b, size] : open_sizes) {
        EXPECT_LE(size, bucket_size_bound(n, m, 8)) << "open bucket " << b;
    }
}

TEST(Partition, AllEqualYieldsSingleEqualClass) {
    const std::uint64_t n = 5000, m = 512;
    Parallel pool(1);
    auto recs = generate(Workload::kAllEqual, n, 1);
    VectorSource src(recs);
    auto pivots = compute_pivots_sampling(src, n, m, 4, pool);
    ASSERT_EQ(pivots.keys.size(), 1u);
    for (const auto& r : recs) {
        EXPECT_TRUE(pivots.is_equal_class(pivots.bucket_of(r.key)));
    }
}

TEST(Partition, ConsumesSourceExactly) {
    const std::uint64_t n = 3000, m = 256;
    Parallel pool(1);
    auto recs = generate(Workload::kUniform, n, 5);
    VectorSource src(recs);
    (void)compute_pivots_sampling(src, n, m, 4, pool);
    EXPECT_EQ(src.remaining(), 0u);
    VectorSource src2(recs);
    EXPECT_THROW(compute_pivots_sampling(src2, n + 1, m, 4, pool), std::invalid_argument);
}

TEST(Algorithm2, BucketBoundHolds) {
    // Choose G with G log N <= N/S (the paper's condition for
    // 0 < N_b < 2N/S).
    const std::uint64_t n = 32768;
    const std::uint32_t s = 8;
    const auto logn = static_cast<std::uint64_t>(paper_log(static_cast<double>(n)));
    const std::uint32_t g = static_cast<std::uint32_t>(std::max<std::uint64_t>(
        1, n / (s * logn * 2)));
    Parallel pool(2);
    for (Workload w : {Workload::kUniform, Workload::kGaussian, Workload::kSorted,
                       Workload::kReverse}) {
        auto recs = generate_distinct(w, n, 9);
        auto pivots = algorithm2_partition_elements(recs, g, s, pool);
        ASSERT_FALSE(pivots.keys.empty()) << to_string(w);
        std::vector<std::uint64_t> sizes(pivots.n_buckets(), 0);
        for (const auto& r : recs) sizes[pivots.bucket_of(r.key)]++;
        for (std::size_t b = 0; b < sizes.size(); ++b) {
            EXPECT_LT(sizes[b], 2 * n / s + 2 * logn * g)
                << to_string(w) << " bucket " << b;
        }
    }
}

TEST(Algorithm2, InputValidation) {
    Parallel pool(1);
    std::vector<Record> recs(10);
    EXPECT_THROW(algorithm2_partition_elements(recs, 0, 4, pool), std::invalid_argument);
    EXPECT_THROW(algorithm2_partition_elements(recs, 2, 1, pool), std::invalid_argument);
    auto empty = algorithm2_partition_elements(std::span<const Record>{}, 2, 4, pool);
    EXPECT_TRUE(empty.keys.empty());
}

TEST(Partition, BucketBoundFormulaSanity) {
    // bound(n) is ~(3/2) n/S for n >> m and shrinks with larger S.
    const std::uint64_t n = 1 << 20, m = 1 << 14;
    EXPECT_LT(bucket_size_bound(n, m, 16), bucket_size_bound(n, m, 4));
    EXPECT_LE(bucket_size_bound(n, m, 4), 2 * n / 4);
}

} // namespace
} // namespace balsort
