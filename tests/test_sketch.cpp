// Tests for the deterministic Munro-Paterson quantile sketch and the
// streaming-sketch pivot method built on it.
#include <gtest/gtest.h>

#include "core/balance_sort.hpp"
#include "pram/quantile_sketch.hpp"
#include "util/random.hpp"
#include "util/workload.hpp"

namespace balsort {
namespace {

/// Rank interval of `key` in sorted `keys`: with duplicates, a key covers
/// [lower_bound, upper_bound) and satisfies any target inside it.
std::pair<std::uint64_t, std::uint64_t> rank_interval(const std::vector<std::uint64_t>& keys,
                                                      std::uint64_t key) {
    const auto lo = std::lower_bound(keys.begin(), keys.end(), key) - keys.begin();
    const auto hi = std::upper_bound(keys.begin(), keys.end(), key) - keys.begin();
    return {static_cast<std::uint64_t>(lo), static_cast<std::uint64_t>(hi)};
}

std::uint64_t distance_to_target(std::pair<std::uint64_t, std::uint64_t> interval,
                                 std::uint64_t target) {
    if (target >= interval.first && target < std::max(interval.second, interval.first + 1)) {
        return 0;
    }
    return target < interval.first ? interval.first - target : target - interval.second;
}

TEST(QuantileSketch, ExactOnSmallStreams) {
    QuantileSketch s(128);
    for (std::uint64_t i = 1; i <= 100; ++i) s.add(i * 10);
    EXPECT_EQ(s.count(), 100u);
    EXPECT_EQ(s.levels(), 0u); // never collapsed: exact
    auto q = s.quantiles(3); // quartiles
    ASSERT_EQ(q.size(), 3u);
    EXPECT_NEAR(static_cast<double>(q[0]), 250.0, 20.0);
    EXPECT_NEAR(static_cast<double>(q[1]), 500.0, 20.0);
    EXPECT_NEAR(static_cast<double>(q[2]), 750.0, 20.0);
}

TEST(QuantileSketch, ConstructionRules) {
    EXPECT_THROW(QuantileSketch(1), std::invalid_argument);
    QuantileSketch s(2);
    EXPECT_TRUE(s.quantiles(4).empty()); // empty sketch -> no quantiles
}

class SketchAccuracyTest : public ::testing::TestWithParam<Workload> {};

TEST_P(SketchAccuracyTest, RankErrorWithinBound) {
    const Workload w = GetParam();
    const std::uint64_t n = 50000;
    const std::size_t k = 256;
    auto recs = generate(w, n, 17);
    QuantileSketch s(k);
    std::vector<std::uint64_t> keys;
    keys.reserve(n);
    for (const auto& r : recs) {
        s.add(r.key);
        keys.push_back(r.key);
    }
    const std::uint32_t q = 15;
    auto quants = s.quantiles(q);
    ASSERT_FALSE(quants.empty());
    const std::uint64_t bound = s.rank_error_bound();
    EXPECT_LT(bound, n / 4) << "bound uselessly loose";
    std::sort(keys.begin(), keys.end());
    // After dedup the i-th reported quantile corresponds to some target;
    // check each reported key's rank interval sits within `bound` of SOME
    // ideal target (with duplicates a key covers a whole rank range).
    for (std::uint64_t key : quants) {
        const auto interval = rank_interval(keys, key);
        std::uint64_t best = ~std::uint64_t{0};
        for (std::uint32_t i = 1; i <= q; ++i) {
            const std::uint64_t target = n * i / (q + 1);
            best = std::min(best, distance_to_target(interval, target));
        }
        EXPECT_LE(best, bound) << to_string(w) << " key " << key;
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, SketchAccuracyTest,
                         ::testing::Values(Workload::kUniform, Workload::kGaussian,
                                           Workload::kZipf, Workload::kSorted,
                                           Workload::kReverse),
                         [](const auto& pinfo) {
                             std::string s = to_string(pinfo.param);
                             for (char& c : s) {
                                 if (c == '-') c = '_';
                             }
                             return s;
                         });

TEST(QuantileSketch, Deterministic) {
    auto run = [] {
        QuantileSketch s(64);
        Xoshiro256 rng(5);
        for (int i = 0; i < 10000; ++i) s.add(rng());
        return s.quantiles(7);
    };
    EXPECT_EQ(run(), run());
}

TEST(QuantileSketch, QuantilesAreSortedUniqueDataKeys) {
    QuantileSketch s(32);
    std::set<std::uint64_t> added;
    Xoshiro256 rng(3);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t k = rng.below(100000);
        s.add(k);
        added.insert(k);
    }
    auto q = s.quantiles(10);
    for (std::size_t i = 0; i < q.size(); ++i) {
        EXPECT_TRUE(added.count(q[i])) << "quantile must be a real data key";
        if (i > 0) {
            EXPECT_GT(q[i], q[i - 1]);
        }
    }
}

// ---------- the streaming-sketch pivot method, end to end ----------

class SketchPivotSortTest : public ::testing::TestWithParam<Workload> {};

TEST_P(SketchPivotSortTest, SortsCorrectly) {
    const Workload w = GetParam();
    PdmConfig cfg{.n = 40000, .m = 1024, .d = 8, .b = 8, .p = 2};
    DiskArray disks(cfg.d, cfg.b);
    auto input = generate(w, cfg.n, 23);
    SortOptions opt;
    opt.pivot_method = PivotMethod::kStreamingSketch;
    opt.balance.check_invariants = true;
    SortReport rep;
    auto sorted = balance_sort_records(disks, input, cfg, opt, &rep);
    EXPECT_TRUE(is_sorted_permutation_of(input, sorted)) << to_string(w);
    EXPECT_TRUE(rep.balance.invariant2_held);
}

INSTANTIATE_TEST_SUITE_P(Workloads, SketchPivotSortTest, ::testing::ValuesIn(all_workloads()),
                         [](const auto& pinfo) {
                             std::string s = to_string(pinfo.param);
                             for (char& c : s) {
                                 if (c == '-') c = '_';
                             }
                             return s;
                         });

TEST(SketchPivots, SavesAFullPassPerRecursiveLevel) {
    PdmConfig cfg{.n = 1 << 17, .m = 1 << 10, .d = 8, .b = 8, .p = 1};
    auto input = generate(Workload::kUniform, cfg.n, 5);
    SortReport sampling_rep, sketch_rep;
    {
        DiskArray disks(cfg.d, cfg.b);
        (void)balance_sort_records(disks, input, cfg, SortOptions{}, &sampling_rep);
    }
    {
        DiskArray disks(cfg.d, cfg.b);
        SortOptions opt;
        opt.pivot_method = PivotMethod::kStreamingSketch;
        (void)balance_sort_records(disks, input, cfg, opt, &sketch_rep);
    }
    ASSERT_GE(sampling_rep.levels, 3u);
    // Each recursive level drops its pivot read pass: expect a clear
    // reduction in read steps; writes essentially unchanged (only padding
    // noise from slightly different bucket boundaries).
    EXPECT_LT(sketch_rep.io.read_steps, sampling_rep.io.read_steps * 9 / 10);
    const double wdelta =
        std::abs(static_cast<double>(sketch_rep.io.blocks_written) -
                 static_cast<double>(sampling_rep.io.blocks_written));
    EXPECT_LT(wdelta / static_cast<double>(sampling_rep.io.blocks_written), 0.02);
    EXPECT_LT(sketch_rep.io_ratio, sampling_rep.io_ratio);
}

TEST(SketchPivots, DeterministicAcrossRuns) {
    PdmConfig cfg{.n = 30000, .m = 1024, .d = 4, .b = 8, .p = 1};
    auto input = generate(Workload::kZipf, cfg.n, 11);
    SortOptions opt;
    opt.pivot_method = PivotMethod::kStreamingSketch;
    SortReport r1, r2;
    DiskArray d1(cfg.d, cfg.b), d2(cfg.d, cfg.b);
    auto s1 = balance_sort_records(d1, input, cfg, opt, &r1);
    auto s2 = balance_sort_records(d2, input, cfg, opt, &r2);
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(r1.io.io_steps(), r2.io.io_steps());
}

} // namespace
} // namespace balsort
