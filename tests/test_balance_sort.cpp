// End-to-end tests for Balance Sort on the parallel disk model: sorting
// correctness across a parameter grid, Theorem 1 ratio sanity, Theorem 4
// balance, determinism, report contents, and error handling.
#include <gtest/gtest.h>

#include "core/balance_sort.hpp"
#include "util/workload.hpp"

namespace balsort {
namespace {

struct GridCase {
    std::uint64_t n;
    std::uint64_t m;
    std::uint32_t d;
    std::uint32_t b;
    std::uint32_t p;
};

class SortGridTest : public ::testing::TestWithParam<std::tuple<Workload, GridCase>> {};

TEST_P(SortGridTest, SortsCorrectlyWithInvariants) {
    auto [w, g] = GetParam();
    PdmConfig cfg{.n = g.n, .m = g.m, .d = g.d, .b = g.b, .p = g.p};
    DiskArray disks(cfg.d, cfg.b);
    auto input = generate(w, cfg.n, 1234 + g.n);
    SortOptions opt;
    opt.balance.check_invariants = true;
    SortReport rep;
    auto sorted = balance_sort_records(disks, input, cfg, opt, &rep);
    EXPECT_TRUE(is_sorted_permutation_of(input, sorted))
        << to_string(w) << " N=" << g.n << " M=" << g.m << " D=" << g.d << " B=" << g.b;
    EXPECT_TRUE(rep.balance.invariant1_held);
    EXPECT_TRUE(rep.balance.invariant2_held);
    if (cfg.n > cfg.m) {
        EXPECT_GT(rep.io.io_steps(), 0u);
        // All-equal input resolves entirely through the equal-class fast
        // path at the first level; everything else must recurse.
        EXPECT_GE(rep.levels, w == Workload::kAllEqual ? 1u : 2u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SortGridTest,
    ::testing::Combine(::testing::ValuesIn(all_workloads()),
                       ::testing::Values(GridCase{5000, 512, 4, 8, 2},
                                         GridCase{20000, 1024, 8, 16, 4})),
    [](const auto& pinfo) {
        const auto& g = std::get<1>(pinfo.param);
        std::string name = to_string(std::get<0>(pinfo.param)) + "_N" + std::to_string(g.n) +
                           "_D" + std::to_string(g.d);
        for (char& c : name) {
            if (c == '-') c = '_';
        }
        return name;
    });

class SortShapeTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(SortShapeTest, UniformAcrossMachineShapes) {
    const GridCase g = GetParam();
    PdmConfig cfg{.n = g.n, .m = g.m, .d = g.d, .b = g.b, .p = g.p};
    DiskArray disks(cfg.d, cfg.b);
    auto input = generate(Workload::kUniform, cfg.n, 777);
    SortOptions opt;
    opt.balance.check_invariants = true;
    SortReport rep;
    auto sorted = balance_sort_records(disks, input, cfg, opt, &rep);
    EXPECT_TRUE(is_sorted_permutation_of(input, sorted))
        << "N=" << g.n << " M=" << g.m << " D=" << g.d << " B=" << g.b << " P=" << g.p;
}

INSTANTIATE_TEST_SUITE_P(
    MachineShapes, SortShapeTest,
    ::testing::Values(GridCase{100, 512, 1, 1, 1},      // single disk, unit blocks
                      GridCase{1000, 64, 1, 4, 1},      // deep recursion, 1 disk
                      GridCase{1000, 64, 2, 4, 1},      // two disks
                      GridCase{1000, 64, 3, 4, 2},      // prime disk count
                      GridCase{5000, 128, 6, 4, 2},     // D' divisor choices
                      GridCase{5000, 256, 16, 4, 4},    // many disks
                      GridCase{3000, 4096, 4, 16, 4},   // N < M: pure base case
                      GridCase{4097, 256, 5, 8, 3},     // odd N, odd D
                      GridCase{1 << 15, 1 << 10, 8, 32, 8}, // powers of two
                      GridCase{12345, 500, 7, 9, 5}));  // nothing divides anything

TEST(BalanceSort, IoWithinConstantFactorOfTheorem1) {
    PdmConfig cfg{.n = 1 << 18, .m = 1 << 13, .d = 8, .b = 32, .p = 4};
    DiskArray disks(cfg.d, cfg.b);
    auto input = generate(Workload::kUniform, cfg.n, 42);
    SortReport rep;
    auto sorted = balance_sort_records(disks, input, cfg, SortOptions{}, &rep);
    ASSERT_TRUE(is_sorted_by_key(sorted));
    EXPECT_GT(rep.io_ratio, 1.0);   // cannot beat the lower bound
    EXPECT_LT(rep.io_ratio, 25.0);  // and stays a small constant above it
    EXPECT_GT(rep.io.utilization(cfg.d), 0.5);
}

TEST(BalanceSort, IoRatioFlatInN) {
    // Theorem 1's real claim: measured/formula is a constant independent
    // of N. Sweep N over 16x and require the ratio band to stay tight.
    double lo = 1e9, hi = 0;
    for (std::uint64_t n : {std::uint64_t{1} << 15, std::uint64_t{1} << 17,
                            std::uint64_t{1} << 19}) {
        PdmConfig cfg{.n = n, .m = 1 << 12, .d = 8, .b = 16, .p = 2};
        DiskArray disks(cfg.d, cfg.b);
        auto input = generate(Workload::kUniform, n, n);
        SortReport rep;
        auto sorted = balance_sort_records(disks, input, cfg, SortOptions{}, &rep);
        ASSERT_TRUE(is_sorted_by_key(sorted));
        lo = std::min(lo, rep.io_ratio);
        hi = std::max(hi, rep.io_ratio);
    }
    EXPECT_LT(hi / lo, 1.8) << "I/O ratio drifted with N: " << lo << " .. " << hi;
}

TEST(BalanceSort, Theorem4WorstBucketRatio) {
    for (Workload w : {Workload::kUniform, Workload::kGaussian, Workload::kZipf}) {
        PdmConfig cfg{.n = 1 << 17, .m = 1 << 12, .d = 8, .b = 16, .p = 2};
        DiskArray disks(cfg.d, cfg.b);
        auto input = generate(w, cfg.n, 5);
        SortReport rep;
        (void)balance_sort_records(disks, input, cfg, SortOptions{}, &rep);
        EXPECT_LE(rep.worst_bucket_read_ratio, 2.25) << to_string(w);
    }
}

TEST(BalanceSort, DeterministicAcrossRuns) {
    PdmConfig cfg{.n = 30000, .m = 1024, .d = 8, .b = 8, .p = 2};
    auto input = generate(Workload::kGaussian, cfg.n, 99);
    SortReport r1, r2;
    DiskArray d1(cfg.d, cfg.b), d2(cfg.d, cfg.b);
    auto s1 = balance_sort_records(d1, input, cfg, SortOptions{}, &r1);
    auto s2 = balance_sort_records(d2, input, cfg, SortOptions{}, &r2);
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(r1.io.io_steps(), r2.io.io_steps());
    EXPECT_EQ(r1.balance.tracks, r2.balance.tracks);
    EXPECT_EQ(r1.balance.matched_blocks, r2.balance.matched_blocks);
}

TEST(BalanceSort, AllOptionCombinationsSort) {
    PdmConfig cfg{.n = 12000, .m = 512, .d = 8, .b = 8, .p = 2};
    auto input = generate(Workload::kZipf, cfg.n, 7);
    for (auto strat : {MatchStrategy::kGreedy, MatchStrategy::kRandomized,
                       MatchStrategy::kDerandomized}) {
        for (auto aux : {AuxRule::kPaperMedian, AuxRule::kArgTwiceAvg}) {
            for (auto defer : {DeferPolicy::kPaperDefer, DeferPolicy::kRebalanceAll}) {
                DiskArray disks(cfg.d, cfg.b);
                SortOptions opt;
                opt.balance.matching = strat;
                opt.balance.aux = aux;
                opt.balance.defer = defer;
                opt.balance.check_invariants = (aux == AuxRule::kPaperMedian);
                SortReport rep;
                auto sorted = balance_sort_records(disks, input, cfg, opt, &rep);
                EXPECT_TRUE(is_sorted_permutation_of(input, sorted))
                    << to_string(strat) << " aux=" << static_cast<int>(aux)
                    << " defer=" << static_cast<int>(defer);
            }
        }
    }
}

TEST(BalanceSort, ExplicitSAndDVirtualOverrides) {
    PdmConfig cfg{.n = 20000, .m = 1024, .d = 8, .b = 8, .p = 2};
    auto input = generate(Workload::kUniform, cfg.n, 3);
    for (std::uint32_t dv : {1u, 2u, 4u, 8u}) {
        for (std::uint32_t s : {2u, 3u, 8u}) {
            DiskArray disks(cfg.d, cfg.b);
            SortOptions opt;
            opt.d_virtual = dv;
            opt.s_target = s;
            opt.bucket_policy = BucketPolicy::kFixed;
            SortReport rep;
            auto sorted = balance_sort_records(disks, input, cfg, opt, &rep);
            EXPECT_TRUE(is_sorted_by_key(sorted)) << "dv=" << dv << " s=" << s;
            EXPECT_EQ(rep.d_virtual, dv);
        }
    }
}

TEST(BalanceSort, EqualClassFastPathEngages) {
    PdmConfig cfg{.n = 50000, .m = 1024, .d = 4, .b = 8, .p = 1};
    DiskArray disks(cfg.d, cfg.b);
    auto input = generate(Workload::kDuplicateHeavy, cfg.n, 11); // 16 keys
    SortReport rep;
    auto sorted = balance_sort_records(disks, input, cfg, SortOptions{}, &rep);
    EXPECT_TRUE(is_sorted_permutation_of(input, sorted));
    // Nearly all mass should flow through equal-class streaming, keeping
    // the recursion shallow despite N/M = 48 and massive duplication.
    EXPECT_GT(rep.equal_class_records, cfg.n / 2);
    EXPECT_LE(rep.levels, 4u);
}

TEST(BalanceSort, AllEqualInput) {
    PdmConfig cfg{.n = 20000, .m = 512, .d = 4, .b = 8, .p = 1};
    DiskArray disks(cfg.d, cfg.b);
    auto input = generate(Workload::kAllEqual, cfg.n, 1);
    SortReport rep;
    auto sorted = balance_sort_records(disks, input, cfg, SortOptions{}, &rep);
    EXPECT_TRUE(is_sorted_permutation_of(input, sorted));
    EXPECT_LE(rep.levels, 2u);
}

TEST(BalanceSort, ConfigValidationErrors) {
    DiskArray disks(4, 8);
    auto input = generate(Workload::kUniform, 100, 1);
    // DB > M/2.
    PdmConfig bad{.n = 100, .m = 32, .d = 4, .b = 8, .p = 1};
    EXPECT_THROW(balance_sort_records(disks, input, bad, {}, nullptr),
                 std::invalid_argument);
    // cfg.n mismatch with the run.
    PdmConfig ok{.n = 100, .m = 512, .d = 4, .b = 8, .p = 1};
    BlockRun run = write_striped(disks, input);
    PdmConfig wrong_n = ok;
    wrong_n.n = 99;
    EXPECT_THROW(balance_sort(disks, run, wrong_n, {}, nullptr), std::invalid_argument);
    // d_virtual that does not divide D.
    SortOptions opt;
    opt.d_virtual = 3;
    EXPECT_THROW(balance_sort(disks, run, ok, opt, nullptr), std::invalid_argument);
}

TEST(BalanceSort, ValidateRejectsIncoherentOptions) {
    // Streaming sketch + per-level sqrt policy: the child S is unknown
    // while the parent runs, so no sketch can be sized for it.
    SortOptions sketch_sqrt;
    sketch_sqrt.pivot_method = PivotMethod::kStreamingSketch;
    sketch_sqrt.bucket_policy = BucketPolicy::kSqrtLevel;
    EXPECT_THROW(sketch_sqrt.validate(4), std::invalid_argument);

    // s_target with a non-fixed policy (previously silently implied kFixed).
    SortOptions s_no_fixed;
    s_no_fixed.s_target = 8;
    s_no_fixed.bucket_policy = BucketPolicy::kPaperPdm;
    EXPECT_THROW(s_no_fixed.validate(4), std::invalid_argument);
    s_no_fixed.bucket_policy = BucketPolicy::kSqrtLevel;
    EXPECT_THROW(s_no_fixed.validate(4), std::invalid_argument);
    s_no_fixed.bucket_policy = BucketPolicy::kFixed;
    EXPECT_NO_THROW(s_no_fixed.validate(4));

    // d_virtual must divide D (and not exceed it).
    SortOptions dv;
    dv.d_virtual = 3;
    EXPECT_THROW(dv.validate(4), std::invalid_argument);
    dv.d_virtual = 8;
    EXPECT_THROW(dv.validate(4), std::invalid_argument);
    dv.d_virtual = 2;
    EXPECT_NO_THROW(dv.validate(4));

    // The defaults are coherent for any D.
    EXPECT_NO_THROW(SortOptions{}.validate(1));
    EXPECT_NO_THROW(SortOptions{}.validate(16));
}

TEST(BalanceSort, EqualClassStreamCopyResolvesAllEqualWithoutRecursion) {
    // N > M all-equal input: one Balance pass puts everything in the
    // single pivot's equal class, which EmitPhase stream-copies to the
    // output — no base case ever runs below the top level.
    PdmConfig cfg{.n = 20000, .m = 512, .d = 4, .b = 8, .p = 2};
    for (bool pool : {true, false}) {
        DiskArray disks(cfg.d, cfg.b);
        auto input = generate(Workload::kAllEqual, cfg.n, 3);
        SortOptions opt;
        opt.pool_buffers = pool;
        SortReport rep;
        auto sorted = balance_sort_records(disks, input, cfg, opt, &rep);
        EXPECT_TRUE(is_sorted_permutation_of(input, sorted)) << "pool=" << pool;
        EXPECT_EQ(rep.equal_class_records, cfg.n);
        EXPECT_EQ(rep.base_cases, 0u);
        EXPECT_EQ(rep.levels, 1u);
    }
}

TEST(BalanceSort, WorkMetricsPopulated) {
    PdmConfig cfg{.n = 40000, .m = 2048, .d = 8, .b = 16, .p = 4};
    DiskArray disks(cfg.d, cfg.b);
    auto input = generate(Workload::kUniform, cfg.n, 17);
    SortReport rep;
    (void)balance_sort_records(disks, input, cfg, SortOptions{}, &rep);
    EXPECT_GT(rep.comparisons, cfg.n); // at least one comparison per record
    EXPECT_GT(rep.pram_time, 0.0);
    EXPECT_GT(rep.optimal_work, 0.0);
    EXPECT_GT(rep.work_ratio, 0.0);
    // Work stays within a moderate constant of (N/P) log N.
    EXPECT_LT(rep.work_ratio, 64.0);
    EXPECT_GT(rep.s_used, 1u);
    EXPECT_GT(rep.base_cases, 0u);
    EXPECT_EQ(rep.bucket_bound, bucket_size_bound(cfg.n, cfg.m, rep.s_used));
    EXPECT_LE(rep.max_bucket_records, rep.bucket_bound);
}

TEST(BalanceSort, LeavesInputIntact) {
    PdmConfig cfg{.n = 5000, .m = 512, .d = 4, .b = 8, .p = 1};
    DiskArray disks(cfg.d, cfg.b);
    auto input = generate(Workload::kUniform, cfg.n, 23);
    BlockRun run = write_striped(disks, input);
    (void)balance_sort(disks, run, cfg, {}, nullptr);
    auto again = read_run(disks, run);
    EXPECT_EQ(again, input);
}

TEST(BalanceSort, DefaultBucketCountFollowsPaper) {
    // S = (M/B)^(1/4), at least 2.
    PdmConfig cfg{.n = 1 << 20, .m = 1 << 16, .d = 8, .b = 16, .p = 1};
    // M/B = 4096 -> S = 8 (with a vblock small enough not to clamp).
    EXPECT_EQ(default_bucket_count(cfg, /*vblock=*/32), 8u);
    PdmConfig tiny{.n = 100, .m = 64, .d = 2, .b = 8, .p = 1};
    EXPECT_EQ(default_bucket_count(tiny, 8), 2u); // clamped to minimum
}

} // namespace
} // namespace balsort
