// Tests for the work-stealing compute core (pram/executor.hpp): executor
// task coverage and stealing, nested fork-join, exception semantics,
// degenerate worker counts, TaskGroup fan-out, and the parallel algorithm
// overloads (multi-selection, multiway merge) against their serial forms.
// The whole binary also runs under TSan in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <set>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/profiler.hpp"
#include "pram/executor.hpp"
#include "pram/parallel_sort.hpp"
#include "pram/selection.hpp"
#include "util/random.hpp"
#include "util/record.hpp"
#include "util/work_meter.hpp"

namespace balsort {
namespace {

// ---- Executor mechanics ----

class CountingJob : public JobBase {
  public:
    explicit CountingJob(std::size_t n) : hits_(n) {}
    void run_task(std::uint32_t idx) override { hits_[idx].fetch_add(1); }
    std::vector<std::atomic<int>> hits_;
};

TEST(Executor, RunsEveryChunkExactlyOnce) {
    Executor exec(3);
    EXPECT_EQ(exec.workers(), 3u);
    CountingJob job(257); // far more chunks than workers: queues must drain
    exec.run(job, 257);
    for (const auto& h : job.hits_) EXPECT_EQ(h.load(), 1);
    const Executor::Stats s = exec.stats();
    EXPECT_EQ(s.tasks, 257u);
}

TEST(Executor, StealsAcrossDeques) {
    // External pushes spray round-robin; workers finishing early must
    // steal from their neighbours' deques to drain 4096 tasks. Steals are
    // timing-dependent, so correctness (exactly-once) is the hard
    // assertion and the counters are only sanity-checked.
    Executor exec(3);
    std::atomic<std::uint64_t> sum{0};
    CountingJob job(4096);
    exec.run(job, 4096);
    for (const auto& h : job.hits_) sum += static_cast<std::uint64_t>(h.load());
    EXPECT_EQ(sum.load(), 4096u);
    EXPECT_GT(exec.stats().tasks, 0u);
}

TEST(Executor, NestedParallelForDoesNotDeadlock) {
    Executor exec(3);
    Parallel pool(4, &exec);
    std::vector<std::atomic<int>> hits(64 * 64);
    pool.parallel_for(0, 64, [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t i = lo; i < hi; ++i) {
            // Inner fork-join from inside a task: join must help-drain
            // instead of parking, or the workers starve each other.
            pool.parallel_for(0, 64, [&, i](std::size_t jlo, std::size_t jhi, std::size_t) {
                for (std::size_t j = jlo; j < jhi; ++j) hits[i * 64 + j].fetch_add(1);
            });
        }
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Executor, FirstExceptionWinsAndLaterChunksAreSkipped) {
    Executor exec(2);
    Parallel pool(3, &exec);
    std::atomic<int> ran{0};
    try {
        pool.parallel_for(0, 300, [&](std::size_t lo, std::size_t, std::size_t) {
            if (lo == 0) throw std::runtime_error("first");
            ran.fetch_add(1);
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "first");
    }
    // Still healthy: the failed job's accounting fully drained.
    std::atomic<int> ok{0};
    pool.parallel_for(0, 10, [&](std::size_t, std::size_t, std::size_t) { ok.fetch_add(1); });
    EXPECT_GT(ok.load(), 0);
}

TEST(Executor, SingleWorkerDegenerate) {
    Executor exec(1);
    Parallel pool(2, &exec);
    std::vector<std::atomic<int>> hits(100);
    pool.parallel_for(0, 100, [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Executor, NoExecutorRunsInlineWithChunkIndices) {
    // The 0-worker degenerate: a width-p view with no executor must still
    // present p logical chunks (serial, in order) — not one fused call.
    Parallel pool(4);
    std::vector<std::size_t> order;
    pool.parallel_for(0, 100, [&](std::size_t, std::size_t, std::size_t c) {
        order.push_back(c);
    });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Executor, SubmitFromManyThreadsConcurrently) {
    // One shared executor, several non-worker submitters — the svc shape.
    Executor exec(3);
    std::vector<std::thread> submitters;
    std::atomic<std::uint64_t> grand{0};
    for (int t = 0; t < 4; ++t) {
        submitters.emplace_back([&exec, &grand]() {
            Parallel pool(4, &exec);
            std::atomic<std::uint64_t> local{0};
            pool.parallel_for(0, 1000, [&](std::size_t lo, std::size_t hi, std::size_t) {
                local.fetch_add(hi - lo);
            });
            grand.fetch_add(local.load());
        });
    }
    for (auto& th : submitters) th.join();
    EXPECT_EQ(grand.load(), 4000u);
}

TEST(Executor, ChannelAccountsTasksStolenHelped) {
    Executor exec(3);
    ComputeChannel ch;
    Parallel pool(4, &exec, &ch);
    pool.parallel_for(0, 512, [](std::size_t, std::size_t, std::size_t) {});
    const std::uint64_t tasks = ch.tasks.load();
    EXPECT_EQ(tasks, 4u); // min(width, n) chunks
    EXPECT_LE(ch.stolen.load() + ch.helped.load(), tasks);
    EXPECT_GE(ch.helped.load(), 1u); // the caller always runs chunk 0
}

// ---- TaskGroup ----

TEST(TaskGroup, RecursiveFanOutCompletes) {
    Executor exec(3);
    std::atomic<std::uint64_t> sum{0};
    {
        TaskGroup group(&exec);
        // Binary fan-out: 1 + 2 + ... + 64 leaf increments.
        std::function<void(std::uint64_t)> fan = [&](std::uint64_t n) {
            if (n == 1) {
                sum.fetch_add(1);
                return;
            }
            group.run([&fan, n] { fan(n / 2); });
            fan(n - n / 2);
        };
        fan(64);
        group.wait();
    }
    EXPECT_EQ(sum.load(), 64u);
}

TEST(TaskGroup, InlineWithoutExecutor) {
    TaskGroup group(nullptr);
    int calls = 0;
    group.run([&calls] { ++calls; });
    group.run([&calls] { ++calls; });
    group.wait();
    EXPECT_EQ(calls, 2);
}

TEST(TaskGroup, SpawnedExceptionSurfacesAtWait) {
    Executor exec(2);
    TaskGroup group(&exec);
    for (int i = 0; i < 16; ++i) {
        group.run([i] {
            if (i == 7) throw std::runtime_error("spawned");
        });
    }
    EXPECT_THROW(group.wait(), std::runtime_error);
}

// ---- Parallel algorithm overloads vs their serial forms ----

TEST(ParallelSelection, MatchesSerialKeysAndCharges) {
    Xoshiro256 rng(123);
    Executor exec(3);
    Parallel pool(4, &exec);
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t n = 20000 + rng.below(20000);
        std::vector<Record> recs(n);
        for (auto& r : recs) r.key = rng.below(500); // heavy duplicates
        const std::size_t k = 1 + rng.below(16);
        std::set<std::uint64_t> rank_set;
        while (rank_set.size() < k) rank_set.insert(1 + rng.below(n));
        std::vector<std::uint64_t> ranks(rank_set.begin(), rank_set.end());

        std::vector<Record> scratch_serial = recs;
        WorkMeter serial_meter;
        auto serial = multi_select_keys(scratch_serial, ranks, &serial_meter);

        std::vector<Record> scratch_par = recs;
        WorkMeter par_meter;
        auto par = multi_select_keys(scratch_par, ranks, pool, &par_meter);

        EXPECT_EQ(par, serial) << "trial " << trial;
        // The recursion tree and its analytic charges are schedule-
        // independent: bit-identical accounting, not just close.
        EXPECT_EQ(par_meter.comparisons(), serial_meter.comparisons()) << "trial " << trial;
        EXPECT_EQ(par_meter.moves(), serial_meter.moves()) << "trial " << trial;
    }
}

std::vector<std::vector<Record>> make_adversarial_runs(Xoshiro256& rng, int k) {
    // Duplicate-heavy, skewed-length runs: long stretches of equal keys
    // spanning run boundaries stress the rank-splitting tie-break.
    std::vector<std::vector<Record>> runs(static_cast<std::size_t>(k));
    std::uint64_t payload = 0;
    for (auto& run : runs) {
        const std::size_t len = 1 + rng.below(4000);
        run.resize(len);
        for (auto& rec : run) rec = {rng.below(8), payload++}; // keys in [0,8)
        std::sort(run.begin(), run.end(), KeyLess{});
    }
    return runs;
}

TEST(ParallelMerge, ByteIdenticalToSerialOnDuplicateHeavyRuns) {
    Xoshiro256 rng(7);
    Executor exec(3);
    Parallel pool(4, &exec);
    for (int trial = 0; trial < 8; ++trial) {
        auto runs_data = make_adversarial_runs(rng, 2 + static_cast<int>(rng.below(9)));
        std::vector<std::span<const Record>> runs;
        std::size_t total = 0;
        for (const auto& r : runs_data) {
            runs.emplace_back(r);
            total += r.size();
        }
        std::vector<Record> serial(total), par(total);
        WorkMeter serial_meter, par_meter;
        multiway_merge(runs, serial, &serial_meter);
        multiway_merge(runs, par, pool, &par_meter);
        ASSERT_EQ(par.size(), serial.size());
        for (std::size_t i = 0; i < total; ++i) {
            ASSERT_EQ(par[i].key, serial[i].key) << "trial " << trial << " i=" << i;
            // Stability across the splits: equal keys keep run order, which
            // the payload stamp makes observable.
            ASSERT_EQ(par[i].payload, serial[i].payload) << "trial " << trial << " i=" << i;
        }
        EXPECT_EQ(par_meter.moves(), serial_meter.moves());
    }
}

TEST(ParallelMerge, EmptyAndSingleRunDegenerates) {
    Executor exec(2);
    Parallel pool(3, &exec);
    std::vector<std::span<const Record>> empty_runs;
    std::vector<Record> out;
    multiway_merge(empty_runs, out, pool); // no-op
    std::vector<Record> single = {{3, 0}, {5, 0}};
    std::vector<std::span<const Record>> one_run = {std::span<const Record>(single)};
    out.resize(2);
    multiway_merge(one_run, out, pool);
    EXPECT_EQ(out[0].key, 3u);
    EXPECT_EQ(out[1].key, 5u);
}

TEST(ParallelClassification, BucketOfMatchesSerial) {
    Xoshiro256 rng(55);
    Executor exec(3);
    Parallel pool(4, &exec);
    std::vector<Record> recs(50000);
    for (auto& r : recs) r.key = rng.below(100000);
    std::vector<std::uint64_t> pivots = {10, 10000, 40000, 90000};
    WorkMeter serial_meter, par_meter;
    auto serial = bucket_of(recs, pivots, &serial_meter);
    auto par = bucket_of(recs, pivots, pool, &par_meter);
    EXPECT_EQ(par, serial);
    EXPECT_EQ(par_meter.comparisons(), serial_meter.comparisons());
}

#ifndef BALSORT_NO_OBS
// Signal-safety smoke, run under TSan by CI: SIGPROF sampling hammers the
// executor's workers mid-steal while a parallel sort runs. The handler's
// contract (no locks, no allocation, relaxed ring stores) means TSan must
// stay silent and the sorted output must be exactly what an unprofiled
// run produces. A high prime hz maximizes handler/steal interleavings.
TEST(Executor, SamplingProfilerIsSignalSafeAcrossWorkers) {
    Xoshiro256 rng(99);
    std::vector<Record> recs(200000);
    for (auto& r : recs) r.key = rng.below(1u << 30);
    std::vector<Record> expected = recs;
    std::sort(expected.begin(), expected.end(),
              [](const Record& a, const Record& b) { return a.key < b.key; });

    ProfilerConfig cfg;
    cfg.hz = 4999; // well above the default: stress the handler path
    cfg.ring_slots = 256;
    Profiler profiler(cfg);
    std::vector<Record> sorted = recs;
    {
        ProfilerScope scope(&profiler);
        Executor exec(4);
        Parallel pool(4, &exec);
        WorkMeter meter;
        parallel_merge_sort(sorted, pool, &meter);
    }
    EXPECT_EQ(sorted, expected);
    // No samples may have been lost to a blocked handler; drops are only
    // legal for ring exhaustion, which 4 threads cannot hit (64 rings).
    EXPECT_EQ(profiler.dropped_samples(), 0u);
}
#endif // BALSORT_NO_OBS

} // namespace
} // namespace balsort
