// Tests for src/hypercube: topology, bitonic sort, prefix scan, monotone
// routing (the §4.2 primitives), and the interconnect cost models.
#include <gtest/gtest.h>

#include "hypercube/bitonic.hpp"
#include "hypercube/hypercube.hpp"
#include "util/random.hpp"
#include "util/workload.hpp"

namespace balsort {
namespace {

TEST(Hypercube, ConstructionRules) {
    EXPECT_NO_THROW(Hypercube(1));
    EXPECT_NO_THROW(Hypercube(64));
    EXPECT_THROW(Hypercube(0), std::invalid_argument);
    EXPECT_THROW(Hypercube(12), std::invalid_argument);
    Hypercube c(32);
    EXPECT_EQ(c.size(), 32u);
    EXPECT_EQ(c.dimensions(), 5u);
}

TEST(Hypercube, ExchangeStepPairsAndCounts) {
    Hypercube c(8);
    for (std::size_t i = 0; i < 8; ++i) c.at(i) = {i, i};
    c.exchange_step(1, [](std::size_t i, Record& lo, Record& hi) {
        EXPECT_EQ(lo.key + 2, hi.key); // partner differs in bit 1
        EXPECT_EQ(i & 2u, 0u);
        std::swap(lo, hi);
    });
    EXPECT_EQ(c.steps(), 1u);
    EXPECT_EQ(c.at(0).key, 2u);
    EXPECT_EQ(c.at(2).key, 0u);
}

TEST(Hypercube, ExchangeRejectsBadDimension) {
    Hypercube c(8);
    EXPECT_THROW(c.exchange_step(3, [](std::size_t, Record&, Record&) {}), ModelViolation);
}

TEST(Hypercube, LocalStepVisitsEveryNode) {
    Hypercube c(16);
    c.local_step([](std::size_t i, Record& r) { r.key = i * 10; });
    for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(c.at(i).key, i * 10);
    EXPECT_EQ(c.steps(), 1u);
}

class BitonicTest : public ::testing::TestWithParam<std::tuple<std::size_t, Workload>> {};

TEST_P(BitonicTest, SortsAndUsesExactStepCount) {
    auto [h, w] = GetParam();
    Hypercube cube(h);
    auto in = generate(w, h, 99);
    cube.load(in);
    const std::uint64_t steps = hypercube_bitonic_sort(cube);
    auto out = cube.unload();
    EXPECT_TRUE(is_sorted_by_key(out)) << to_string(w) << " H=" << h;
    EXPECT_TRUE(is_sorted_permutation_of(in, out));
    // Exactly d(d+1)/2 exchange steps.
    const std::uint64_t d = cube.dimensions();
    EXPECT_EQ(steps, d * (d + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BitonicTest,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{4},
                                         std::size_t{16}, std::size_t{64}, std::size_t{256}),
                       ::testing::Values(Workload::kUniform, Workload::kReverse,
                                         Workload::kDuplicateHeavy, Workload::kAllEqual)));

TEST(HypercubePrefix, ExclusiveScan) {
    for (std::size_t h : {1u, 2u, 8u, 64u}) {
        Hypercube cube(h);
        std::vector<Record> vals(h);
        Xoshiro256 rng(h);
        for (auto& v : vals) v.key = rng.below(100);
        cube.load(vals);
        const std::uint64_t steps = hypercube_prefix_sum(cube);
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < h; ++i) {
            EXPECT_EQ(cube.at(i).key, acc) << "h=" << h << " i=" << i;
            acc += vals[i].key;
        }
        // payload carries the grand total at every node
        for (std::size_t i = 0; i < h; ++i) EXPECT_EQ(cube.at(i).payload, acc);
        EXPECT_EQ(steps, 1u + cube.dimensions());
    }
}

TEST(HypercubeRoute, IdentityAndShift) {
    Hypercube cube(8);
    for (std::size_t i = 0; i < 8; ++i) cube.at(i) = {100 + i, i};
    std::vector<std::uint64_t> dest(8);
    for (std::size_t i = 0; i < 8; ++i) dest[i] = i;
    hypercube_monotone_route(cube, dest);
    for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(cube.at(i).key, 100 + i);
}

TEST(HypercubeRoute, PartialMonotone) {
    Hypercube cube(8);
    for (std::size_t i = 0; i < 8; ++i) cube.at(i) = {i, i};
    std::vector<std::uint64_t> dest(8, kNoPacket);
    dest[0] = 2;
    dest[1] = 6;
    dest[5] = 7;
    hypercube_monotone_route(cube, dest);
    EXPECT_EQ(cube.at(2).key, 0u);
    EXPECT_EQ(cube.at(6).key, 1u);
    EXPECT_EQ(cube.at(7).key, 5u);
}

TEST(HypercubeRoute, RejectsNonMonotone) {
    Hypercube cube(4);
    std::vector<std::uint64_t> dest = {3, 1, kNoPacket, kNoPacket};
    EXPECT_THROW(hypercube_monotone_route(cube, dest), ModelViolation);
}

TEST(HypercubeRoute, RejectsOutOfRange) {
    Hypercube cube(4);
    std::vector<std::uint64_t> dest = {9, kNoPacket, kNoPacket, kNoPacket};
    EXPECT_THROW(hypercube_monotone_route(cube, dest), std::invalid_argument);
}

// Exhaustive property check: every monotone partial route on small cubes
// is delivered collision-free (the §4.2 model rule).
TEST(HypercubeRoute, ExhaustiveSmallCubes) {
    for (std::size_t h : {2u, 4u, 8u}) {
        // enumerate all subsets of sources and, for each, a deterministic
        // monotone destination assignment sampled a few ways
        for (std::uint32_t mask = 0; mask < (1u << h); ++mask) {
            const int k = __builtin_popcount(mask);
            if (k == 0) continue;
            for (std::uint64_t variant = 0; variant < 3; ++variant) {
                // choose destinations: k increasing values out of h
                Xoshiro256 rng(mask * 7919 + variant);
                std::vector<std::uint64_t> all(h);
                for (std::size_t i = 0; i < h; ++i) all[i] = i;
                // sample k sorted destinations
                for (std::size_t i = 0; i < h; ++i) {
                    std::swap(all[i], all[i + rng.below(h - i)]);
                }
                std::vector<std::uint64_t> dst(all.begin(), all.begin() + k);
                std::sort(dst.begin(), dst.end());
                Hypercube cube(h);
                std::vector<std::uint64_t> dest(h, kNoPacket);
                std::size_t q = 0;
                for (std::size_t i = 0; i < h; ++i) {
                    if (mask & (1u << i)) {
                        cube.at(i) = {1000 + i, i};
                        dest[i] = dst[q++];
                    }
                }
                hypercube_monotone_route(cube, dest);
                q = 0;
                for (std::size_t i = 0; i < h; ++i) {
                    if (mask & (1u << i)) {
                        EXPECT_EQ(cube.at(dst[q]).key, 1000 + i)
                            << "h=" << h << " mask=" << mask << " variant=" << variant;
                        ++q;
                    }
                }
            }
        }
    }
}

TEST(HypercubeRoute, RandomLargeCubes) {
    Xoshiro256 rng(4242);
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t h = std::size_t{1} << (3 + rng.below(5)); // 8..128
        const std::size_t k = 1 + rng.below(h);
        auto src_perm = random_permutation(static_cast<std::uint32_t>(h), rng());
        auto dst_perm = random_permutation(static_cast<std::uint32_t>(h), rng());
        std::vector<std::uint64_t> srcs(src_perm.begin(), src_perm.begin() + k);
        std::vector<std::uint64_t> dsts(dst_perm.begin(), dst_perm.begin() + k);
        std::sort(srcs.begin(), srcs.end());
        std::sort(dsts.begin(), dsts.end());
        Hypercube cube(h);
        std::vector<std::uint64_t> dest(h, kNoPacket);
        for (std::size_t q = 0; q < k; ++q) {
            cube.at(srcs[q]) = {5000 + q, q};
            dest[srcs[q]] = dsts[q];
        }
        const std::uint64_t steps = hypercube_monotone_route(cube, dest);
        for (std::size_t q = 0; q < k; ++q) {
            ASSERT_EQ(cube.at(dsts[q]).key, 5000 + q) << "trial=" << trial;
        }
        // O(log H): concentrate + distribute = 2 log H steps.
        EXPECT_LE(steps, 2 * cube.dimensions());
    }
}

class BlockSortTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, Workload>> {};

TEST_P(BlockSortTest, MergeSplitBitonicSortsBlocks) {
    auto [h, k, w] = GetParam();
    auto in = generate(w, h * k, 7 * h + k);
    auto data = in;
    const std::uint64_t steps = hypercube_block_sort(h, data);
    EXPECT_TRUE(is_sorted_permutation_of(in, data))
        << "H=" << h << " k=" << k << " " << to_string(w);
    // Same network depth as the one-record bitonic sort, plus the local
    // pre-sort step.
    const std::uint64_t d = ilog2_floor(h);
    EXPECT_EQ(steps, d * (d + 1) / 2 + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockSortTest,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{4}, std::size_t{16},
                                         std::size_t{64}),
                       ::testing::Values(std::size_t{1}, std::size_t{3}, std::size_t{16}),
                       ::testing::Values(Workload::kUniform, Workload::kReverse,
                                         Workload::kDuplicateHeavy)),
    [](const auto& param_info) {
        std::string s = "H" + std::to_string(std::get<0>(param_info.param)) + "_k" +
                        std::to_string(std::get<1>(param_info.param)) + "_" +
                        to_string(std::get<2>(param_info.param));
        for (char& c : s) {
            if (c == '-') c = '_';
        }
        return s;
    });

TEST(BlockSort, Validation) {
    std::vector<Record> recs(10);
    EXPECT_THROW(hypercube_block_sort(3, recs), std::invalid_argument);  // H not pow2
    EXPECT_THROW(hypercube_block_sort(4, recs), std::invalid_argument);  // 10 % 4 != 0
    std::vector<Record> empty;
    EXPECT_EQ(hypercube_block_sort(4, empty), 0u);
}

TEST(InterconnectCost, ShapesAndOrdering) {
    // T(H) curves: pram <= hypercube_precomp <= hypercube always; bitonic
    // (log^2 H) overtakes Sharesort (log H (log log H)^2) only once
    // log H > (log log H)^2, i.e. for astronomically large H — check both
    // regimes explicitly.
    for (double h : {256.0, 4096.0, 65536.0}) {
        EXPECT_LE(InterconnectCost::pram(h), InterconnectCost::hypercube_precomp(h));
        EXPECT_LE(InterconnectCost::hypercube_precomp(h), InterconnectCost::hypercube(h));
    }
    EXPECT_DOUBLE_EQ(InterconnectCost::pram(1024.0), 10.0);
    const double huge = std::pow(2.0, 300.0); // log H = 300 > (log log H)^2 ~ 68
    EXPECT_LT(InterconnectCost::hypercube(huge), InterconnectCost::bitonic(huge));
}

} // namespace
} // namespace balsort
