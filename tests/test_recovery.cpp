// Tests for the crash-consistency and I/O-deadline layer (DESIGN.md §13):
// checkpoint record serialization and file framing, atomic replacement
// (the .tmp orphan guard), DiskArray snapshot/restore, the release
// quarantine, seeded hang faults, and the deadline -> TimedOutIo -> parity
// failover path with its recovery-side accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "core/balance_sort.hpp"
#include "core/checkpoint.hpp"
#include "obs/metrics.hpp"
#include "pdm/disk_array.hpp"
#include "pdm/faulty_disk.hpp"
#include "pdm/mem_disk.hpp"
#include "pdm/striping.hpp"
#include "util/workload.hpp"

namespace balsort {
namespace {

namespace fs = std::filesystem;

std::string tmp_path(const char* name) {
    return (fs::temp_directory_path() / name).string();
}

std::vector<Record> make_block(std::size_t b, std::uint64_t tag) {
    std::vector<Record> blk(b);
    for (std::size_t i = 0; i < b; ++i) blk[i] = {tag * 100 + i, tag};
    return blk;
}

/// A checkpoint record exercising every optional branch of the codec:
/// multiple frames (with and without buckets), consumed/equal-class/
/// sketch-pivot/repositioned buckets, a live emit buffer, nonzero meters,
/// and a real array snapshot with fault state and checksum sidecars.
CheckpointRecord rich_record() {
    CheckpointRecord rec;
    rec.seq = 17;
    rec.resumes = 2;
    rec.n = 4096;
    rec.m = 512;
    rec.p = 4;
    rec.d = 4;
    rec.b = 8;
    rec.dv = 2;
    rec.backend = 1;
    rec.synchronized_writes = 1;

    CheckpointFrame root;
    root.n = 4096;
    root.depth = 0;
    root.has_pivots = true;
    root.pivots.keys = {10, 20, 30};
    root.has_buckets = true;
    root.next_bucket = 2;
    root.buckets.emplace_back(); // consumed: serialized empty
    BucketOutput live;
    live.run.n_records = 77;
    live.run.entries.push_back({{1, {{0, 5}, {2, 9}}}, 8});
    live.run.entries.push_back({{0, {{1, 3}}}, 5});
    live.min_key = 21;
    live.max_key = 29;
    live.has_sketch_pivots = true;
    live.sketch_pivots.keys = {23, 27};
    live.repositioned = true;
    root.buckets.push_back(live);
    BucketOutput eq;
    eq.is_equal_class = true;
    eq.min_key = eq.max_key = 30;
    root.buckets.push_back(eq);
    rec.frames.push_back(root);

    CheckpointFrame child;
    child.n = 77;
    child.depth = 1;
    child.has_pivots = true;
    child.pivots.keys = {24};
    rec.frames.push_back(child); // pivots only: balance not yet run

    rec.out_run.blocks = {{0, 0}, {1, 0}, {2, 0}};
    rec.out_run.n_records = 24;
    rec.out_buffer = {{1, 2}, {3, 4}, {5, 6}};
    rec.out_next_disk = 3;

    rec.comparisons = 1000;
    rec.moves = 2000;
    rec.collectives = 30;
    rec.pram_steps = 400;
    rec.io_delta.read_steps = 50;
    rec.io_delta.write_steps = 40;
    rec.io_delta.blocks_read = 180;
    rec.io_delta.blocks_written = 150;
    rec.io_delta.transient_retries = 3;
    rec.io_delta.io_timeouts = 1;
    rec.io_delta.engine_busy_seconds = 0.25;

    rec.levels = 2;
    rec.s_used = 3;
    rec.base_cases = 5;
    rec.equal_class_records = 12;
    rec.max_bucket_records = 1500;
    rec.bucket_bound = 2048;
    rec.worst_bucket_read_ratio = 1.25;
    rec.balance.tracks = 64;
    rec.balance.direct_blocks = 100;
    rec.balance.invariant1_held = true;
    rec.balance.invariant2_held = true;

    // A real snapshot (fault layer + checksums + parity) beats a
    // hand-built one: it covers the layers' actual export paths.
    FaultTolerance ft;
    ft.inject.seed = 99;
    ft.inject.read_transient_rate = 0.1;
    ft.checksums = true;
    ft.parity = true;
    DiskArray disks(2, 4, DiskBackend::kMemory, ".", Constraint::kIndependentDisks, ft);
    for (std::uint32_t d = 0; d < 2; ++d) {
        const std::uint64_t blk = disks.allocate(d);
        BlockOp op{d, blk};
        auto data = make_block(4, d + 1);
        disks.write_step({&op, 1}, data);
    }
    disks.release(0, disks.allocate(0)); // populate a free list
    rec.disks = disks.snapshot();
    return rec;
}

TEST(CheckpointCodec, RoundTripsEveryField) {
    const CheckpointRecord rec = rich_record();
    const std::vector<std::uint8_t> payload = encode_checkpoint(rec);
    const CheckpointRecord back = decode_checkpoint(payload.data(), payload.size());
    // Spot-check structure, then pin full equality via re-encoding.
    EXPECT_EQ(back.seq, 17u);
    EXPECT_EQ(back.resumes, 2u);
    ASSERT_EQ(back.frames.size(), 2u);
    EXPECT_EQ(back.frames[0].next_bucket, 2u);
    ASSERT_EQ(back.frames[0].buckets.size(), 3u);
    EXPECT_EQ(back.frames[0].buckets[0].run.n_records, 0u); // consumed
    EXPECT_EQ(back.frames[0].buckets[1].run.n_records, 77u);
    EXPECT_TRUE(back.frames[0].buckets[1].repositioned);
    EXPECT_TRUE(back.frames[0].buckets[1].has_sketch_pivots);
    EXPECT_TRUE(back.frames[0].buckets[2].is_equal_class);
    EXPECT_FALSE(back.frames[1].has_buckets);
    EXPECT_EQ(back.out_buffer.size(), 3u);
    EXPECT_EQ(back.io_delta.io_timeouts, 1u);
    EXPECT_DOUBLE_EQ(back.io_delta.engine_busy_seconds, 0.25);
    ASSERT_EQ(back.disks.disks.size(), 2u);
    EXPECT_TRUE(back.disks.has_parity_sidecar);
    EXPECT_EQ(encode_checkpoint(back), payload);
}

TEST(CheckpointFile, AtomicWriteThenLoad) {
    const std::string path = tmp_path("balsort_ck_roundtrip.ck");
    const CheckpointRecord rec = rich_record();
    write_checkpoint_atomic(path, rec);
    EXPECT_FALSE(fs::exists(path + ".tmp")) << "tmp file must not outlive the rename";
    const CheckpointRecord back = load_checkpoint(path);
    EXPECT_EQ(encode_checkpoint(back), encode_checkpoint(rec));
    // Overwrite in place: the atomic-replace path, not create-new.
    CheckpointRecord rec2 = rec;
    rec2.seq = 18;
    write_checkpoint_atomic(path, rec2);
    EXPECT_EQ(load_checkpoint(path).seq, 18u);
    fs::remove(path);
}

// Satellite: the RAII unlink guard. When the durable-replace protocol
// fails after the tmp file exists (here: the final rename hits a
// directory squatting on the target path), the guard must remove the
// orphan instead of leaking one scratch file per crash-loop iteration.
TEST(CheckpointFile, FailedRenameLeavesNoTmpOrphan) {
    const std::string path = tmp_path("balsort_ck_squatter");
    fs::remove_all(path);
    fs::create_directory(path); // rename(tmp, path) will fail
    EXPECT_THROW(write_checkpoint_atomic(path, rich_record()), IoError);
    EXPECT_FALSE(fs::exists(path + ".tmp")) << "orphaned tmp after failed rename";
    fs::remove_all(path);
}

TEST(CheckpointFile, LoadRejectsMissingTruncatedAndCorrupt) {
    const std::string path = tmp_path("balsort_ck_corrupt.ck");
    fs::remove(path);
    EXPECT_THROW(load_checkpoint(path), IoError); // missing

    write_checkpoint_atomic(path, rich_record());
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(bytes.size(), 32u);

    auto rewrite = [&](const std::vector<char>& img) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(img.data(), static_cast<std::streamsize>(img.size()));
    };

    std::vector<char> truncated(bytes.begin(), bytes.begin() + static_cast<long>(bytes.size() / 2));
    rewrite(truncated);
    EXPECT_THROW(load_checkpoint(path), IoError);

    std::vector<char> flipped = bytes;
    flipped[bytes.size() - 1] ^= 0x40; // payload corruption -> CRC mismatch
    rewrite(flipped);
    EXPECT_THROW(load_checkpoint(path), IoError);

    std::vector<char> badmagic = bytes;
    badmagic[0] ^= 0xff;
    rewrite(badmagic);
    EXPECT_THROW(load_checkpoint(path), IoError);

    rewrite(bytes); // pristine image still loads
    EXPECT_NO_THROW(load_checkpoint(path));
    fs::remove(path);
}

// ------------------------------------------------------- array snapshot

TEST(DiskArraySnapshotTest, RestoreRewindsAllocatorHealthAndSidecars) {
    FaultTolerance ft;
    ft.inject.seed = 7;
    ft.inject.read_transient_rate = 0.05;
    ft.checksums = true;
    DiskArray disks(2, 4, DiskBackend::kMemory, ".", Constraint::kIndependentDisks, ft);

    const std::uint64_t b0 = disks.allocate(0);
    BlockOp op{0, b0};
    auto data = make_block(4, 42);
    disks.write_step({&op, 1}, data);
    disks.release(0, disks.allocate(0)); // one free-listed block
    const DiskArraySnapshot snap = disks.snapshot();
    const std::uint64_t hw0 = disks.high_water(0);
    const std::uint64_t free0 = disks.free_blocks(0);

    // Diverge: burn allocator space, RNG draws, and checksum slots.
    for (int i = 0; i < 5; ++i) {
        const std::uint64_t nb = disks.allocate(1);
        BlockOp w{1, nb};
        auto d2 = make_block(4, 50 + static_cast<std::uint64_t>(i));
        disks.write_step({&w, 1}, d2);
    }
    std::vector<Record> out(4);
    disks.read_step({&op, 1}, out);

    disks.restore(snap);
    EXPECT_EQ(disks.high_water(0), hw0);
    EXPECT_EQ(disks.free_blocks(0), free0);
    // The restored snapshot re-exports identically (fault RNG streams
    // included) — the property resume relies on.
    const DiskArraySnapshot again = disks.snapshot();
    ASSERT_EQ(again.disks.size(), snap.disks.size());
    for (std::size_t d = 0; d < snap.disks.size(); ++d) {
        EXPECT_EQ(again.disks[d].next_free, snap.disks[d].next_free);
        EXPECT_EQ(again.disks[d].free_blocks, snap.disks[d].free_blocks);
        ASSERT_EQ(again.disks[d].has_fault_state, snap.disks[d].has_fault_state);
        if (snap.disks[d].has_fault_state) {
            EXPECT_EQ(again.disks[d].fault_state.read_rng, snap.disks[d].fault_state.read_rng);
            EXPECT_EQ(again.disks[d].fault_state.ops, snap.disks[d].fault_state.ops);
        }
    }
    // The original block still reads back clean through the restored
    // checksum sidecar.
    disks.read_step({&op, 1}, out);
    EXPECT_EQ(out, data);
}

// ------------------------------------------------------ release quarantine

TEST(ReleaseQuarantine, ParksReleasesUntilDurableBoundary) {
    DiskArray disks(2, 4);
    const std::uint64_t a = disks.allocate(0);
    const std::uint64_t b = disks.allocate(0);
    EXPECT_EQ(b, a + 1);

    disks.set_release_quarantine(true);
    disks.release(0, a);
    // Parked, not free: the allocator must not hand the block back out.
    EXPECT_EQ(disks.free_blocks(0), 0u);
    EXPECT_EQ(disks.allocate(0), b + 1);

    disks.flush_release_quarantine();
    EXPECT_EQ(disks.free_blocks(0), 1u);
    EXPECT_EQ(disks.allocate(0), a); // shallow reuse resumes

    // Turning the quarantine off flushes stragglers.
    disks.release(0, b);
    EXPECT_EQ(disks.free_blocks(0), 0u);
    disks.set_release_quarantine(false);
    EXPECT_EQ(disks.free_blocks(0), 1u);
}

// ------------------------------------------------------------- hang faults

TEST(HangFaults, DeterministicScheduleAndCleanCompletion) {
    FaultSpec spec;
    spec.seed = 5;
    spec.hang_every_ops = 3;
    spec.hang_duration_us = 200; // long enough to count, short enough to test
    FaultInjectingDisk disk(std::make_unique<MemDisk>(4), spec, 0);
    auto blk = make_block(4, 1);
    disk.write_block(0, blk);
    std::vector<Record> out(4);
    for (int i = 0; i < 9; ++i) disk.read_block(0, out);
    // Reads 3, 6, 9 hang; the hang clock never counts writes.
    EXPECT_EQ(disk.injected_hangs(), 3u);
    EXPECT_EQ(out, blk) << "a hung read still completes successfully";

    // State export/import resumes the same schedule mid-stream.
    const FaultInjectingDisk::State st = disk.export_state();
    FaultInjectingDisk disk2(std::make_unique<MemDisk>(4), spec, 0);
    disk2.write_block(0, blk);
    disk2.import_state(st);
    for (int i = 0; i < 3; ++i) disk2.read_block(0, out);
    EXPECT_EQ(disk2.injected_hangs(), 4u); // read 12 of the logical stream
}

TEST(HangFaults, RateBasedStreamIndependentOfOtherFaultKinds) {
    // Enabling hangs must not perturb the transient-fault sequence of the
    // same seed: the streams are separate by construction.
    FaultSpec plain;
    plain.seed = 11;
    plain.read_transient_rate = 0.3;
    FaultSpec hanging = plain;
    hanging.read_hang_rate = 0.5;
    hanging.hang_duration_us = 1;

    auto run = [](const FaultSpec& spec) {
        FaultInjectingDisk d(std::make_unique<MemDisk>(4), spec, 2);
        auto blk = make_block(4, 3);
        d.write_block(1, blk);
        std::vector<Record> out(4);
        std::vector<bool> errs;
        for (int i = 0; i < 40; ++i) {
            try {
                d.read_block(1, out);
                errs.push_back(false);
            } catch (const TransientIoError&) {
                errs.push_back(true);
            }
        }
        return std::pair(errs, d.injected_hangs());
    };
    const auto [errs_plain, hangs_plain] = run(plain);
    const auto [errs_hang, hangs_hang] = run(hanging);
    EXPECT_EQ(errs_plain, errs_hang);
    EXPECT_EQ(hangs_plain, 0u);
    EXPECT_GT(hangs_hang, 0u);
}

// ---------------------------------------------- deadline -> parity failover

TEST(DeadlineFailover, TimedOutReadsServedFromParityWithCleanModelCounts) {
    PdmConfig cfg{.n = 4096, .m = 512, .d = 4, .b = 8, .p = 2};
    auto input = generate(Workload::kUniform, cfg.n, 42);

    SortOptions opt;
    opt.async_io = AsyncIo::kOn;
    SortReport plain_rep;
    std::vector<Record> plain;
    {
        DiskArray disks(cfg.d, cfg.b);
        plain = balance_sort_records(disks, input, cfg, opt, &plain_rep);
    }

    FaultTolerance ft;
    ft.inject.seed = 13;
    ft.inject.hang_every_ops = 60;      // a handful of hangs per disk
    ft.inject.hang_duration_us = 30000; // 30ms: far past the deadline
    ft.deadline_us = 2000;              // 2ms read deadline
    ft.parity = true;                    // failover target
    ft.checksums = true;
    SortReport rep;
    MetricsRegistry reg;
    SortOptions mopt = opt;
    mopt.metrics = &reg;
    DiskArray disks(cfg.d, cfg.b, DiskBackend::kMemory, ".", Constraint::kIndependentDisks, ft);
    const std::vector<Record> sorted = balance_sort_records(disks, input, cfg, mopt, &rep);

    // Deadlines fired and were served by reconstruction, not by waiting.
    EXPECT_GT(rep.io.io_timeouts, 0u);
    EXPECT_GT(rep.io.reconstructions, 0u);
#ifndef BALSORT_NO_OBS
    EXPECT_EQ(reg.counter("io.timeouts").value(), rep.io.io_timeouts);
#endif
    // The paper's measure is untouched by recovery traffic, and the output
    // is the correct sort.
    EXPECT_EQ(rep.io.read_steps, plain_rep.io.read_steps);
    EXPECT_EQ(rep.io.write_steps, plain_rep.io.write_steps);
    EXPECT_EQ(sorted, plain);
    // No disk was declared dead: slow is not failed.
    EXPECT_EQ(rep.disks_failed, 0u);
}

TEST(DeadlineFailover, BackoffJitterKeepsRetrySequenceDeterministic) {
    // Jitter scales sleeps, never decisions: two identical runs with
    // jitter on retry identically and sort identically.
    PdmConfig cfg{.n = 2048, .m = 512, .d = 4, .b = 8, .p = 2};
    auto input = generate(Workload::kZipf, cfg.n, 9);
    FaultTolerance ft;
    ft.inject.seed = 21;
    ft.inject.read_transient_rate = 0.01;
    ft.inject.write_transient_rate = 0.01;
    ft.backoff_base_us = 1;
    ft.backoff_jitter = true;
    auto run = [&](SortReport& rep) {
        DiskArray disks(cfg.d, cfg.b, DiskBackend::kMemory, ".",
                        Constraint::kIndependentDisks, ft);
        return balance_sort_records(disks, input, cfg, {}, &rep);
    };
    SortReport r1, r2;
    const auto s1 = run(r1);
    const auto s2 = run(r2);
    EXPECT_GT(r1.io.transient_retries, 0u);
    EXPECT_EQ(r1.io.transient_retries, r2.io.transient_retries);
    EXPECT_EQ(r1.io.io_steps(), r2.io.io_steps());
    EXPECT_EQ(s1, s2);
    std::vector<Record> expect = input;
    std::stable_sort(expect.begin(), expect.end(),
                     [](const Record& a, const Record& b) { return a.key < b.key; });
    EXPECT_EQ(s1, expect);
}

} // namespace
} // namespace balsort
