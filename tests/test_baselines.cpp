// Tests for src/baselines: striped merge sort, Greed Sort, and the
// randomized Vitter-Shriver distribution sort — correctness across
// workloads and the I/O-count relationships the paper predicts.
#include <gtest/gtest.h>

#include "baselines/greed_sort.hpp"
#include "baselines/rand_dist.hpp"
#include "baselines/striped_merge.hpp"
#include "core/balance_sort.hpp"
#include "util/workload.hpp"

namespace balsort {
namespace {

std::string test_safe(std::string s) {
    for (char& c : s) {
        if (c == '-') c = '_';
    }
    return s;
}

class BaselineWorkloadTest : public ::testing::TestWithParam<Workload> {};

TEST_P(BaselineWorkloadTest, StripedMergeSorts) {
    const Workload w = GetParam();
    PdmConfig cfg{.n = 20000, .m = 1024, .d = 8, .b = 16, .p = 1};
    DiskArray disks(cfg.d, cfg.b);
    auto input = generate(w, cfg.n, 11);
    BlockRun run = write_striped(disks, input);
    StripedMergeReport rep;
    BlockRun out = striped_merge_sort(disks, run, cfg, &rep);
    auto sorted = read_run(disks, out);
    EXPECT_TRUE(is_sorted_permutation_of(input, sorted)) << to_string(w);
    EXPECT_GT(rep.passes, 0u);
    EXPECT_EQ(rep.initial_runs, ceil_div(cfg.n, cfg.m));
}

TEST_P(BaselineWorkloadTest, GreedSortSorts) {
    const Workload w = GetParam();
    PdmConfig cfg{.n = 20000, .m = 1024, .d = 8, .b = 16, .p = 1};
    DiskArray disks(cfg.d, cfg.b);
    auto input = generate(w, cfg.n, 13);
    BlockRun run = write_striped(disks, input);
    GreedSortReport rep;
    BlockRun out = greed_sort(disks, run, cfg, &rep);
    auto sorted = read_run(disks, out);
    EXPECT_TRUE(is_sorted_permutation_of(input, sorted)) << to_string(w);
    EXPECT_EQ(rep.merge_degree, greed_merge_degree(cfg));
}

TEST_P(BaselineWorkloadTest, GreedSortApproximateSorts) {
    const Workload w = GetParam();
    PdmConfig cfg{.n = 20000, .m = 1024, .d = 8, .b = 16, .p = 1};
    DiskArray disks(cfg.d, cfg.b);
    auto input = generate(w, cfg.n, 19);
    BlockRun run = write_striped(disks, input);
    GreedApproxReport rep;
    BlockRun out = greed_sort_approximate(disks, run, cfg, &rep);
    auto sorted = read_run(disks, out);
    EXPECT_TRUE(is_sorted_permutation_of(input, sorted)) << to_string(w);
    // The NoV displacement bound: every record within L <= R*D*B of its
    // place after the approximate pass (window = 2L).
    EXPECT_LE(rep.max_displacement, rep.window / 2) << to_string(w);
}

TEST(GreedSortApproximate, ApproxPassActuallyApproximates) {
    // On shuffled data the unconditional emission must produce some
    // displacement (else the test is vacuous) and the cleanup fixes it.
    PdmConfig cfg{.n = 30000, .m = 512, .d = 8, .b = 8, .p = 1};
    DiskArray disks(cfg.d, cfg.b);
    auto input = generate(Workload::kUniform, cfg.n, 99);
    BlockRun run = write_striped(disks, input);
    GreedApproxReport rep;
    BlockRun out = greed_sort_approximate(disks, run, cfg, &rep);
    EXPECT_TRUE(is_sorted_by_key(read_run(disks, out)));
    EXPECT_GT(rep.max_displacement, 0u);
    EXPECT_GT(rep.passes, 1u);
}

TEST(GreedSortApproximate, CostsOneExtraPassPerMergePass) {
    PdmConfig cfg{.n = 1 << 16, .m = 1 << 10, .d = 8, .b = 8, .p = 1};
    auto input = generate(Workload::kGaussian, cfg.n, 3);
    std::uint64_t exact_ios, approx_ios;
    {
        DiskArray disks(cfg.d, cfg.b);
        BlockRun run = write_striped(disks, input);
        GreedSortReport rep;
        (void)greed_sort(disks, run, cfg, &rep);
        exact_ios = rep.io.io_steps();
    }
    {
        DiskArray disks(cfg.d, cfg.b);
        BlockRun run = write_striped(disks, input);
        GreedApproxReport rep;
        (void)greed_sort_approximate(disks, run, cfg, &rep);
        approx_ios = rep.io.io_steps();
    }
    EXPECT_GT(approx_ios, exact_ios);      // the cleanup passes cost I/O
    EXPECT_LT(approx_ios, exact_ios * 3);  // but only a constant factor
}

TEST_P(BaselineWorkloadTest, RandDistSorts) {
    const Workload w = GetParam();
    PdmConfig cfg{.n = 20000, .m = 1024, .d = 8, .b = 16, .p = 1};
    DiskArray disks(cfg.d, cfg.b);
    auto input = generate(w, cfg.n, 17);
    BlockRun run = write_striped(disks, input);
    RandDistReport rep;
    BlockRun out = rand_dist_sort(disks, run, cfg, /*seed=*/2024, &rep);
    auto sorted = read_run(disks, out);
    EXPECT_TRUE(is_sorted_permutation_of(input, sorted)) << to_string(w);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, BaselineWorkloadTest,
                         ::testing::ValuesIn(all_workloads()),
                         [](const auto& pinfo) { return test_safe(to_string(pinfo.param)); });

TEST(StripedMerge, FanInFormula) {
    PdmConfig cfg{.n = 1 << 20, .m = 1 << 14, .d = 8, .b = 16, .p = 1};
    // M/(2DB) = 16384/256 = 64.
    EXPECT_EQ(striped_merge_fan_in(cfg), 64u);
    PdmConfig tight{.n = 1 << 20, .m = 1 << 10, .d = 16, .b = 16, .p = 1};
    EXPECT_EQ(striped_merge_fan_in(tight), 2u); // clamped at binary merge
}

TEST(StripedMerge, PassCountGrowsWithD) {
    // The striping penalty: at fixed N, M, B, increasing D shrinks the
    // fan-in and eventually adds merge passes.
    const std::uint64_t n = 1 << 17;
    std::uint32_t passes_small_d = 0, passes_big_d = 0;
    {
        PdmConfig cfg{.n = n, .m = 1 << 10, .d = 2, .b = 8, .p = 1};
        DiskArray disks(cfg.d, cfg.b);
        auto input = generate(Workload::kUniform, n, 1);
        BlockRun run = write_striped(disks, input);
        StripedMergeReport rep;
        (void)striped_merge_sort(disks, run, cfg, &rep);
        passes_small_d = rep.passes;
    }
    {
        PdmConfig cfg{.n = n, .m = 1 << 10, .d = 32, .b = 8, .p = 1};
        DiskArray disks(cfg.d, cfg.b);
        auto input = generate(Workload::kUniform, n, 1);
        BlockRun run = write_striped(disks, input);
        StripedMergeReport rep;
        (void)striped_merge_sort(disks, run, cfg, &rep);
        passes_big_d = rep.passes;
    }
    EXPECT_GT(passes_big_d, passes_small_d);
}

TEST(GreedSort, IndependentDisksBeatStripingAtLargeD) {
    // The headline comparison of §1: with many disks, Greed Sort (and any
    // optimal algorithm) needs fewer I/Os than striped merge sort.
    PdmConfig cfg{.n = 1 << 17, .m = 1 << 10, .d = 32, .b = 8, .p = 1};
    auto input = generate(Workload::kUniform, cfg.n, 3);
    std::uint64_t greed_ios, stripe_ios;
    {
        DiskArray disks(cfg.d, cfg.b);
        BlockRun run = write_striped(disks, input);
        GreedSortReport rep;
        (void)greed_sort(disks, run, cfg, &rep);
        greed_ios = rep.io.io_steps();
    }
    {
        DiskArray disks(cfg.d, cfg.b);
        BlockRun run = write_striped(disks, input);
        StripedMergeReport rep;
        (void)striped_merge_sort(disks, run, cfg, &rep);
        stripe_ios = rep.io.io_steps();
    }
    EXPECT_LT(greed_ios, stripe_ios);
}

TEST(GreedSort, FewerPassesThanStripedMergeAtLargeD) {
    PdmConfig cfg{.n = 1 << 16, .m = 1 << 10, .d = 32, .b = 8, .p = 1};
    // Greed merges sqrt(M/B) = ~11 runs; striping merges M/(2DB) = 2.
    EXPECT_GT(greed_merge_degree(cfg), striped_merge_fan_in(cfg));
}

TEST(GreedSort, PeakBufferStaysModest) {
    PdmConfig cfg{.n = 1 << 16, .m = 1 << 11, .d = 8, .b = 16, .p = 1};
    DiskArray disks(cfg.d, cfg.b);
    auto input = generate(Workload::kUniform, cfg.n, 5);
    BlockRun run = write_striped(disks, input);
    GreedSortReport rep;
    (void)greed_sort(disks, run, cfg, &rep);
    // R*D*B is the analytic buffer bound for the greedy schedule.
    EXPECT_LE(rep.peak_buffered,
              static_cast<std::uint64_t>(rep.merge_degree) * cfg.d * cfg.b + cfg.m);
}

TEST(RandDist, SeedDeterminism) {
    PdmConfig cfg{.n = 15000, .m = 512, .d = 8, .b = 8, .p = 1};
    auto input = generate(Workload::kGaussian, cfg.n, 7);
    std::uint64_t ios1, ios2, ios3;
    std::vector<Record> s1, s3;
    {
        DiskArray disks(cfg.d, cfg.b);
        BlockRun run = write_striped(disks, input);
        RandDistReport rep;
        s1 = read_run(disks, rand_dist_sort(disks, run, cfg, 1, &rep));
        ios1 = rep.io.io_steps();
    }
    {
        DiskArray disks(cfg.d, cfg.b);
        BlockRun run = write_striped(disks, input);
        RandDistReport rep;
        (void)rand_dist_sort(disks, run, cfg, 1, &rep);
        ios2 = rep.io.io_steps();
    }
    {
        DiskArray disks(cfg.d, cfg.b);
        BlockRun run = write_striped(disks, input);
        RandDistReport rep;
        s3 = read_run(disks, rand_dist_sort(disks, run, cfg, 999, &rep));
        ios3 = rep.io.io_steps();
    }
    EXPECT_EQ(ios1, ios2);          // same seed -> identical run
    EXPECT_EQ(s1, s3);              // output identical regardless of seed
    (void)ios3;                     // different seed may differ in I/Os
}

TEST(Baselines, AllAlgorithmsAgreeOnOutput) {
    PdmConfig cfg{.n = 30000, .m = 1024, .d = 8, .b = 16, .p = 2};
    auto input = generate(Workload::kZipf, cfg.n, 29);
    std::vector<std::vector<Record>> outputs;
    {
        DiskArray disks(cfg.d, cfg.b);
        BlockRun run = write_striped(disks, input);
        outputs.push_back(read_run(disks, balance_sort(disks, run, cfg, {}, nullptr)));
    }
    {
        DiskArray disks(cfg.d, cfg.b);
        BlockRun run = write_striped(disks, input);
        outputs.push_back(read_run(disks, striped_merge_sort(disks, run, cfg, nullptr)));
    }
    {
        DiskArray disks(cfg.d, cfg.b);
        BlockRun run = write_striped(disks, input);
        outputs.push_back(read_run(disks, greed_sort(disks, run, cfg, nullptr)));
    }
    {
        DiskArray disks(cfg.d, cfg.b);
        BlockRun run = write_striped(disks, input);
        outputs.push_back(read_run(disks, rand_dist_sort(disks, run, cfg, 4, nullptr)));
    }
    for (auto& out : outputs) {
        ASSERT_EQ(out.size(), input.size());
        EXPECT_TRUE(is_sorted_by_key(out));
    }
    // Keys must agree position-by-position across algorithms (payload order
    // of equal keys may differ: not all engines are stable).
    for (std::size_t a = 1; a < outputs.size(); ++a) {
        for (std::size_t i = 0; i < outputs[0].size(); ++i) {
            ASSERT_EQ(outputs[a][i].key, outputs[0][i].key) << "algorithm " << a << " pos " << i;
        }
    }
}

TEST(Baselines, BalanceSortCompetitiveWithGreedSort) {
    // Both are optimal; their I/O counts should be within a small factor
    // of each other on a mid-size instance.
    PdmConfig cfg{.n = 1 << 17, .m = 1 << 12, .d = 8, .b = 16, .p = 1};
    auto input = generate(Workload::kUniform, cfg.n, 31);
    std::uint64_t bal, greed;
    {
        DiskArray disks(cfg.d, cfg.b);
        BlockRun run = write_striped(disks, input);
        SortReport rep;
        (void)balance_sort(disks, run, cfg, {}, &rep);
        bal = rep.io.io_steps();
    }
    {
        DiskArray disks(cfg.d, cfg.b);
        BlockRun run = write_striped(disks, input);
        GreedSortReport rep;
        (void)greed_sort(disks, run, cfg, &rep);
        greed = rep.io.io_steps();
    }
    const double ratio = static_cast<double>(bal) / static_cast<double>(greed);
    EXPECT_GT(ratio, 0.2);
    EXPECT_LT(ratio, 5.0);
}

TEST(Baselines, InputValidation) {
    DiskArray disks(4, 8);
    auto input = generate(Workload::kUniform, 100, 1);
    BlockRun run = write_striped(disks, input);
    PdmConfig wrong{.n = 99, .m = 512, .d = 4, .b = 8, .p = 1};
    EXPECT_THROW(striped_merge_sort(disks, run, wrong, nullptr), std::invalid_argument);
    EXPECT_THROW(greed_sort(disks, run, wrong, nullptr), std::invalid_argument);
    EXPECT_THROW(rand_dist_sort(disks, run, wrong, 1, nullptr), std::invalid_argument);
}

} // namespace
} // namespace balsort
