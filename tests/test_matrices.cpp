// Tests for src/core/matrices: the histogram matrix X, auxiliary matrix A
// (Algorithm 4 / ComputeAux), the paper's median convention, Invariants
// 1-2, offender detection, and the [Arg] alternative rule.
#include <gtest/gtest.h>

#include "core/matrices.hpp"
#include "util/random.hpp"

namespace balsort {
namespace {

TEST(Matrices, StartsAtZeroAndBinary) {
    BalanceMatrices m(3, 4);
    m.compute_aux();
    for (std::uint32_t b = 0; b < 3; ++b) {
        EXPECT_EQ(m.row_total(b), 0u);
        EXPECT_EQ(m.median(b), 0u);
        for (std::uint32_t h = 0; h < 4; ++h) {
            EXPECT_EQ(m.x(b, h), 0u);
            EXPECT_EQ(m.aux(b, h), 0u);
        }
    }
    EXPECT_TRUE(m.invariant1());
    EXPECT_TRUE(m.invariant2());
}

TEST(Matrices, IncrementDecrement) {
    BalanceMatrices m(2, 3);
    m.increment(1, 2);
    m.increment(1, 2);
    m.increment(0, 0);
    EXPECT_EQ(m.x(1, 2), 2u);
    EXPECT_EQ(m.row_total(1), 2u);
    m.decrement(1, 2);
    EXPECT_EQ(m.x(1, 2), 1u);
    EXPECT_THROW(m.decrement(0, 1), ModelViolation); // below zero
    EXPECT_THROW(m.increment(5, 0), std::invalid_argument);
}

TEST(Matrices, PaperMedianIsCeilHalfSmallest) {
    // Row {0, 1, 3, 9}: paper median = ceil(4/2)=2nd smallest = 1.
    BalanceMatrices m(1, 4);
    for (int i = 0; i < 1; ++i) m.increment(0, 1);
    for (int i = 0; i < 3; ++i) m.increment(0, 2);
    for (int i = 0; i < 9; ++i) m.increment(0, 3);
    m.compute_aux();
    EXPECT_EQ(m.median(0), 1u);
    EXPECT_EQ(m.aux(0, 0), 0u);
    EXPECT_EQ(m.aux(0, 1), 0u);
    EXPECT_EQ(m.aux(0, 2), 2u); // 3-1=2
    EXPECT_EQ(m.aux(0, 3), 2u); // capped at 2
}

TEST(Matrices, AuxIsMaxZeroXMinusMedian) {
    BalanceMatrices m(1, 5);
    // Row {2, 2, 3, 3, 4}: median = 3rd smallest = 3.
    const std::uint32_t counts[5] = {2, 2, 3, 3, 4};
    for (std::uint32_t h = 0; h < 5; ++h) {
        for (std::uint32_t c = 0; c < counts[h]; ++c) m.increment(0, h);
    }
    m.compute_aux();
    EXPECT_EQ(m.median(0), 3u);
    EXPECT_EQ(m.aux(0, 0), 0u);
    EXPECT_EQ(m.aux(0, 1), 0u);
    EXPECT_EQ(m.aux(0, 2), 0u);
    EXPECT_EQ(m.aux(0, 3), 0u);
    EXPECT_EQ(m.aux(0, 4), 1u);
    EXPECT_TRUE(m.invariant1());
    EXPECT_TRUE(m.invariant2());
}

TEST(Matrices, Invariant1HoldsAlways) {
    // Invariant 1 is definitional: for ANY X, at least ceil(H'/2) entries
    // of each row of A are 0. Fuzz it.
    Xoshiro256 rng(11);
    for (int trial = 0; trial < 200; ++trial) {
        const std::uint32_t s = 1 + static_cast<std::uint32_t>(rng.below(5));
        const std::uint32_t h = 1 + static_cast<std::uint32_t>(rng.below(9));
        BalanceMatrices m(s, h);
        const int updates = static_cast<int>(rng.below(200));
        for (int u = 0; u < updates; ++u) {
            m.increment(static_cast<std::uint32_t>(rng.below(s)),
                        static_cast<std::uint32_t>(rng.below(h)));
        }
        m.compute_aux();
        EXPECT_TRUE(m.invariant1()) << "trial " << trial;
    }
}

TEST(Matrices, OffendersFindsExactlyTheTwos) {
    BalanceMatrices m(2, 4);
    // Bucket 0: row {3, 1, 1, 1} -> median 1, aux {2,0,0,0}.
    for (int i = 0; i < 3; ++i) m.increment(0, 0);
    m.increment(0, 1);
    m.increment(0, 2);
    m.increment(0, 3);
    // Bucket 1: flat row, no offenders.
    for (std::uint32_t h = 0; h < 4; ++h) m.increment(1, h);
    m.compute_aux();
    auto off = m.offenders();
    ASSERT_EQ(off.size(), 1u);
    EXPECT_EQ(off[0].vdisk, 0u);
    EXPECT_EQ(off[0].bucket, 0u);
    EXPECT_FALSE(m.invariant2());
}

TEST(Matrices, OffendersRejectsTwoBucketsOnOneVdisk) {
    BalanceMatrices m(2, 4);
    for (int b = 0; b < 2; ++b) {
        for (int i = 0; i < 3; ++i) m.increment(static_cast<std::uint32_t>(b), 0);
        m.increment(static_cast<std::uint32_t>(b), 1);
    }
    m.compute_aux();
    // Both rows have a 2 at vdisk 0: a within-track impossibility.
    EXPECT_THROW(m.offenders(), ModelViolation);
}

TEST(Matrices, SingleVdiskNeverOffends) {
    BalanceMatrices m(3, 1);
    for (int i = 0; i < 100; ++i) m.increment(1, 0);
    m.compute_aux();
    // median of the single entry equals the entry -> aux always 0.
    EXPECT_EQ(m.aux(1, 0), 0u);
    EXPECT_TRUE(m.invariant2());
}

TEST(Matrices, ArgRuleThresholds) {
    BalanceMatrices m(1, 4, AuxRule::kArgTwiceAvg);
    // Row {5, 1, 1, 1}: total 8, desired = ceil(8/4) = 2.
    for (int i = 0; i < 5; ++i) m.increment(0, 0);
    m.increment(0, 1);
    m.increment(0, 2);
    m.increment(0, 3);
    m.compute_aux();
    EXPECT_EQ(m.median(0), 2u);   // "median" slot holds the desired share
    EXPECT_EQ(m.aux(0, 0), 2u);   // 5 > 2*2: over-full
    EXPECT_EQ(m.aux(0, 1), 0u);   // 1 <= 2: eligible target
}

TEST(Matrices, ArgRuleCrowdedBand) {
    BalanceMatrices m(1, 4, AuxRule::kArgTwiceAvg);
    // Row {3, 3, 1, 1}: total 8, desired 2; 3 in (2, 4] -> crowded (1).
    for (int i = 0; i < 3; ++i) m.increment(0, 0);
    for (int i = 0; i < 3; ++i) m.increment(0, 1);
    m.increment(0, 2);
    m.increment(0, 3);
    m.compute_aux();
    EXPECT_EQ(m.aux(0, 0), 1u);
    EXPECT_EQ(m.aux(0, 2), 0u);
    EXPECT_TRUE(m.invariant2());
}

TEST(Matrices, MedianMonotoneUnderBalancedGrowth) {
    // Incrementing every column of a row lifts the median with it, so a
    // uniformly-growing bucket never creates offenders (the all-one-bucket
    // input case of Balance).
    BalanceMatrices m(1, 6);
    for (int round = 0; round < 10; ++round) {
        for (std::uint32_t h = 0; h < 6; ++h) m.increment(0, h);
        m.compute_aux();
        EXPECT_EQ(m.median(0), static_cast<std::uint32_t>(round + 1));
        EXPECT_TRUE(m.invariant2());
    }
}

} // namespace
} // namespace balsort
