// Tests for the concurrent sort service (DESIGN.md §14).
//
// The service's core guarantee — a job's model accounting and sorted
// output are byte-identical whether it runs alone or next to neighbours
// on the shared array — is checked across a backend × engine matrix by
// re-running the same specs solo (max_active=1) and concurrently and
// comparing per-job hashes and counters. Lifecycle (cancel mid-phase,
// cancel while queued, unknown ids), admission control (spec validation,
// queue capacity, scratch budget charge/release), the exclusive
// checkpoint path, manifests, the job-config policy validation, and the
// BufferPool retention cap ride along.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/sort_config.hpp"
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "pdm/disk_array.hpp"
#include "svc/sort_scheduler.hpp"
#include "util/buffer_pool.hpp"
#include "util/workload.hpp"

namespace balsort {
namespace {

/// The time-budget guarantee (DESIGN.md §16): every bucket is non-negative
/// and the split sums to the job's elapsed wall-clock within 1%.
void expect_budget_closed(const JobStatus& st) {
    const TimeBudget& b = st.budget;
    EXPECT_GE(b.compute_seconds, 0.0);
    EXPECT_GE(b.io_wait_seconds, 0.0);
    EXPECT_GE(b.gate_wait_seconds, 0.0);
    EXPECT_GE(b.pool_wait_seconds, 0.0);
    EXPECT_GE(b.other_seconds, 0.0);
    EXPECT_NEAR(b.elapsed_seconds, st.elapsed_seconds, 1e-9);
    const double sum = b.compute_seconds + b.io_wait_seconds + b.gate_wait_seconds +
                       b.pool_wait_seconds + b.other_seconds;
    EXPECT_NEAR(sum, b.elapsed_seconds, 0.01 * std::max(b.elapsed_seconds, 1e-6))
        << st.name << ": budget does not close (sum " << sum << " vs elapsed "
        << b.elapsed_seconds << ")";
}

DiskArray make_array(DiskBackend backend) {
    return backend == DiskBackend::kFile
               ? DiskArray(8, 64, DiskBackend::kFile,
                           std::filesystem::temp_directory_path().string())
               : DiskArray(8, 64);
}

/// `count` distinct-workload specs, sized to finish quickly but still run
/// multiple merge levels (n >> m).
std::vector<JobSpec> make_specs(std::size_t count) {
    const Workload kinds[] = {Workload::kUniform,      Workload::kZipf,
                              Workload::kOrganPipe,    Workload::kNearlySorted,
                              Workload::kDuplicateHeavy, Workload::kGaussian,
                              Workload::kReverse,      Workload::kAllEqual};
    std::vector<JobSpec> specs;
    for (std::size_t i = 0; i < count; ++i) {
        JobSpec s;
        s.workload = kinds[i % (sizeof(kinds) / sizeof(kinds[0]))];
        s.name = std::string(to_string(s.workload)) + "-" + std::to_string(i);
        s.n = 16384 + 2048 * i;
        s.m = 2048;
        s.p = 2;
        s.seed = 77 + i;
        s.config.threads(2);
        specs.push_back(std::move(s));
    }
    return specs;
}

std::vector<JobStatus> run_schedule(const std::vector<JobSpec>& specs, DiskBackend backend,
                                    bool async_io, std::uint32_t max_active) {
    DiskArray disks = make_array(backend);
    SchedulerConfig cfg;
    cfg.max_active = max_active;
    cfg.async_io = async_io;
    SortScheduler sched(disks, cfg);
    for (const JobSpec& s : specs) {
        AdmissionResult adm = sched.submit(s);
        EXPECT_TRUE(adm.admitted) << s.name << ": " << adm.reason;
    }
    return sched.wait_all();
}

/// The matrix body: solo goldens on a fresh array, then the concurrent
/// schedule on another fresh array, per-job quantities must match exactly.
void expect_concurrent_matches_solo(DiskBackend backend, bool async_io, std::size_t n_jobs,
                                    std::uint32_t max_active) {
    const auto specs = make_specs(n_jobs);
    const auto solo = run_schedule(specs, backend, async_io, /*max_active=*/1);
    const auto conc = run_schedule(specs, backend, async_io, max_active);
    ASSERT_EQ(solo.size(), specs.size());
    ASSERT_EQ(conc.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(specs[i].name);
        ASSERT_EQ(solo[i].state, JobState::kSucceeded) << solo[i].error;
        ASSERT_EQ(conc[i].state, JobState::kSucceeded) << conc[i].error;
        EXPECT_EQ(conc[i].output_hash, solo[i].output_hash);
        EXPECT_EQ(conc[i].io.io_steps(), solo[i].io.io_steps());
        EXPECT_EQ(conc[i].report.io.read_steps, solo[i].report.io.read_steps);
        EXPECT_EQ(conc[i].report.io.write_steps, solo[i].report.io.write_steps);
        EXPECT_EQ(conc[i].report.io.blocks_read, solo[i].report.io.blocks_read);
        EXPECT_EQ(conc[i].report.io.blocks_written, solo[i].report.io.blocks_written);
        EXPECT_EQ(conc[i].report.s_used, solo[i].report.s_used);
        EXPECT_EQ(conc[i].report.levels, solo[i].report.levels);
        // Every job's wall-clock budget must close, solo and concurrent
        // alike (DESIGN.md §16).
        expect_budget_closed(solo[i]);
        expect_budget_closed(conc[i]);
    }
}

TEST(SvcMatrixTest, MemorySyncFourJobs) {
    expect_concurrent_matches_solo(DiskBackend::kMemory, /*async_io=*/false, 4, 4);
}

TEST(SvcMatrixTest, MemoryAsyncEightJobs) {
    expect_concurrent_matches_solo(DiskBackend::kMemory, /*async_io=*/true, 8, 4);
}

TEST(SvcMatrixTest, FileSyncTwoJobs) {
    expect_concurrent_matches_solo(DiskBackend::kFile, /*async_io=*/false, 2, 2);
}

TEST(SvcMatrixTest, FileAsyncFourJobs) {
    expect_concurrent_matches_solo(DiskBackend::kFile, /*async_io=*/true, 4, 4);
}

// ---------------------------------------------------------------------------
// Shared compute executor (DESIGN.md §15)
// ---------------------------------------------------------------------------

/// Like run_schedule, but with explicit control over the scheduler's
/// compute executor: shared (one pool, `executor_threads` workers) or
/// per-job private pools.
std::vector<JobStatus> run_schedule_exec(const std::vector<JobSpec>& specs,
                                         std::uint32_t max_active, bool share_executor,
                                         std::uint32_t executor_threads) {
    DiskArray disks = make_array(DiskBackend::kMemory);
    SchedulerConfig cfg;
    cfg.max_active = max_active;
    cfg.async_io = false;
    cfg.share_executor = share_executor;
    cfg.executor_threads = executor_threads;
    SortScheduler sched(disks, cfg);
    for (const JobSpec& s : specs) {
        AdmissionResult adm = sched.submit(s);
        EXPECT_TRUE(adm.admitted) << s.name << ": " << adm.reason;
    }
    return sched.wait_all();
}

/// Jobs asking for 4 compute lanes on an executor sized to exactly honor
/// them (3 workers + the job thread), independent of the host's core count.
std::vector<JobSpec> make_wide_specs(std::size_t count) {
    auto specs = make_specs(count);
    for (JobSpec& s : specs) s.config.threads(4);
    return specs;
}

TEST(SvcExecutorTest, SharedExecutorConcurrentMatchesSolo) {
    // The tentpole guarantee at width 4: one executor serving 4 jobs at
    // once produces, per job, the same sorted output AND the same charged
    // model quantities as the same jobs trickled through one at a time.
    const auto specs = make_wide_specs(4);
    const auto solo = run_schedule_exec(specs, /*max_active=*/1, /*share=*/true, 3);
    const auto conc = run_schedule_exec(specs, /*max_active=*/4, /*share=*/true, 3);
    ASSERT_EQ(solo.size(), specs.size());
    ASSERT_EQ(conc.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(specs[i].name);
        ASSERT_EQ(solo[i].state, JobState::kSucceeded) << solo[i].error;
        ASSERT_EQ(conc[i].state, JobState::kSucceeded) << conc[i].error;
        EXPECT_EQ(conc[i].output_hash, solo[i].output_hash);
        EXPECT_EQ(conc[i].io.io_steps(), solo[i].io.io_steps());
        EXPECT_EQ(conc[i].report.comparisons, solo[i].report.comparisons);
        EXPECT_EQ(conc[i].report.moves, solo[i].report.moves);
        EXPECT_EQ(conc[i].report.pram_time, solo[i].report.pram_time);
        EXPECT_EQ(conc[i].report.s_used, solo[i].report.s_used);
        EXPECT_EQ(conc[i].report.levels, solo[i].report.levels);
        // Per-job compute accounting: the chunk structure is input-
        // deterministic, so the task count matches solo exactly; only the
        // stolen/helped split is schedule-dependent.
        EXPECT_GT(conc[i].report.phases.compute_tasks, 0u);
        EXPECT_EQ(conc[i].report.phases.compute_tasks, solo[i].report.phases.compute_tasks);
        EXPECT_LE(conc[i].report.phases.compute_stolen + conc[i].report.phases.compute_helped,
                  conc[i].report.phases.compute_tasks);
    }
}

TEST(SvcExecutorTest, PrivateExecutorsMatchSharedExecutor) {
    // share_executor=false gives every job its own pool; all model
    // quantities must still match the shared-pool schedule (width is what
    // the charges key on, never the physical pool).
    const auto specs = make_wide_specs(3);
    const auto shared = run_schedule_exec(specs, /*max_active=*/3, /*share=*/true, 3);
    const auto priv = run_schedule_exec(specs, /*max_active=*/3, /*share=*/false, 0);
    ASSERT_EQ(shared.size(), specs.size());
    ASSERT_EQ(priv.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(specs[i].name);
        ASSERT_EQ(shared[i].state, JobState::kSucceeded) << shared[i].error;
        ASSERT_EQ(priv[i].state, JobState::kSucceeded) << priv[i].error;
        EXPECT_EQ(priv[i].output_hash, shared[i].output_hash);
        EXPECT_EQ(priv[i].io.io_steps(), shared[i].io.io_steps());
        EXPECT_EQ(priv[i].report.comparisons, shared[i].report.comparisons);
        EXPECT_EQ(priv[i].report.moves, shared[i].report.moves);
    }
}

TEST(SvcExecutorTest, ExternalSharedExecutorIsRejected) {
    DiskArray disks(8, 64);
    SortScheduler sched(disks, SchedulerConfig{});
    Executor outside(1);
    JobSpec bad;
    bad.name = "outside-exec";
    bad.n = 16384;
    bad.m = 2048;
    bad.p = 2;
    bad.config.compute(ComputePolicy{}.executor(&outside));
    const AdmissionResult r = sched.submit(bad);
    EXPECT_FALSE(r.admitted);
    EXPECT_NE(r.reason.find("Executor"), std::string::npos) << r.reason;
}

TEST(SvcExecutorTest, OverwideThreadsRejectedAtAdmission) {
    // ComputePolicy::validate can't see the scheduler's executor (it is
    // only wired in at run time), so a lane cap the shared executor cannot
    // honor must be rejected by submit() itself — as an AdmissionResult,
    // not a mid-run job failure.
    DiskArray disks(8, 64);
    SchedulerConfig cfg;
    cfg.executor_threads = 1; // 1 worker + the submitting thread = 2 lanes max
    SortScheduler sched(disks, cfg);

    JobSpec bad;
    bad.name = "overwide";
    bad.n = 16384;
    bad.m = 2048;
    bad.p = 2;
    bad.config.threads(3);
    const AdmissionResult r = sched.submit(bad);
    EXPECT_FALSE(r.admitted);
    EXPECT_NE(r.reason.find("executor"), std::string::npos) << r.reason;

    JobSpec ok = bad;
    ok.name = "at-capacity";
    ok.config.threads(2);
    const AdmissionResult a = sched.submit(ok);
    ASSERT_TRUE(a.admitted) << a.reason;
    EXPECT_EQ(sched.wait(a.id).state, JobState::kSucceeded);
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

JobSpec big_spec(const std::string& name) {
    JobSpec s;
    s.name = name;
    s.n = 1u << 18; // long enough that cancel lands mid-sort
    s.m = 2048;
    s.p = 2;
    s.config.threads(2);
    return s;
}

JobSpec small_spec(const std::string& name, std::uint64_t seed = 5) {
    JobSpec s;
    s.name = name;
    s.n = 16384;
    s.m = 2048;
    s.p = 2;
    s.seed = seed;
    s.config.threads(2);
    return s;
}

TEST(SvcLifecycleTest, CancelMidPhaseLeavesArrayHealthy) {
    DiskArray disks(8, 64);
    SchedulerConfig cfg;
    cfg.max_active = 1;
    cfg.async_io = false;
    SortScheduler sched(disks, cfg);

    const AdmissionResult victim = sched.submit(big_spec("victim"));
    ASSERT_TRUE(victim.admitted) << victim.reason;
    while (sched.status(victim.id).state == JobState::kQueued) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(sched.cancel(victim.id));
    const JobStatus cancelled = sched.wait(victim.id);
    EXPECT_EQ(cancelled.state, JobState::kCancelled);
    EXPECT_FALSE(sched.cancel(victim.id)); // terminal: nothing to cancel

    // The shared array must be fully reclaimed: a fresh job still succeeds
    // with solo-identical accounting.
    const AdmissionResult after = sched.submit(small_spec("after"));
    ASSERT_TRUE(after.admitted) << after.reason;
    const JobStatus done = sched.wait(after.id);
    ASSERT_EQ(done.state, JobState::kSucceeded) << done.error;

    const auto golden = run_schedule({small_spec("after")}, DiskBackend::kMemory,
                                     /*async_io=*/false, 1);
    ASSERT_EQ(golden.size(), 1u);
    EXPECT_EQ(done.output_hash, golden[0].output_hash);
    EXPECT_EQ(done.io.io_steps(), golden[0].io.io_steps());
}

TEST(SvcLifecycleTest, CancelQueuedJobIsImmediate) {
    DiskArray disks(8, 64);
    SchedulerConfig cfg;
    cfg.max_active = 1;
    cfg.async_io = false;
    SortScheduler sched(disks, cfg);

    const AdmissionResult head = sched.submit(big_spec("head"));
    ASSERT_TRUE(head.admitted) << head.reason;
    const AdmissionResult queued = sched.submit(small_spec("queued"));
    ASSERT_TRUE(queued.admitted) << queued.reason;

    ASSERT_TRUE(sched.cancel(queued.id));
    EXPECT_EQ(sched.wait(queued.id).state, JobState::kCancelled);

    sched.cancel(head.id); // don't wait out the big sort
    const JobState head_state = sched.wait(head.id).state;
    EXPECT_TRUE(head_state == JobState::kCancelled || head_state == JobState::kSucceeded);
}

TEST(SvcLifecycleTest, UnknownIdsAreRejected) {
    DiskArray disks(8, 64);
    SortScheduler sched(disks, SchedulerConfig{});
    EXPECT_THROW(sched.status(9999), std::invalid_argument);
    EXPECT_FALSE(sched.cancel(9999));
}

TEST(SvcLifecycleTest, ExclusiveCheckpointJobRunsAmongNeighbours) {
    const auto dir = std::filesystem::temp_directory_path() / "balsort_svc_test_ck";
    std::filesystem::create_directories(dir);
    const std::string ck_path = (dir / "job.ck").string();
    std::filesystem::remove(ck_path);

    DiskArray disks(8, 64);
    SchedulerConfig cfg;
    cfg.max_active = 2;
    cfg.async_io = false;
    SortScheduler sched(disks, cfg);

    JobSpec ck = small_spec("checkpointed", 11);
    ck.config.durability(DurabilityPolicy{}.checkpoint(ck_path));

    const AdmissionResult a = sched.submit(small_spec("before", 12));
    const AdmissionResult b = sched.submit(ck);
    const AdmissionResult c = sched.submit(small_spec("while", 13));
    ASSERT_TRUE(a.admitted) << a.reason;
    ASSERT_TRUE(b.admitted) << b.reason;
    ASSERT_TRUE(c.admitted) << c.reason;
    for (const JobStatus& st : sched.wait_all()) {
        EXPECT_EQ(st.state, JobState::kSucceeded) << st.name << ": " << st.error;
    }
    std::filesystem::remove_all(dir);
}

TEST(SvcLifecycleTest, ManifestWrittenPerSucceededJob) {
    const auto dir = std::filesystem::temp_directory_path() / "balsort_svc_test_manifests";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    DiskArray disks(8, 64);
    SchedulerConfig cfg;
    cfg.max_active = 2;
    cfg.async_io = false;
    cfg.manifest_dir = dir.string();
    SortScheduler sched(disks, cfg);

    const AdmissionResult adm = sched.submit(small_spec("manifested", 21));
    ASSERT_TRUE(adm.admitted) << adm.reason;
    ASSERT_EQ(sched.wait(adm.id).state, JobState::kSucceeded);

    const auto path = dir / ("job-" + std::to_string(adm.id) + "-manifested.json");
    EXPECT_TRUE(std::filesystem::exists(path)) << path;
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(SvcAdmissionTest, SpecValidationRejectsWithReason) {
    DiskArray disks(8, 64);
    SortScheduler sched(disks, SchedulerConfig{});
    const JobSpec base = small_spec("base");

    {
        JobSpec bad = base;
        bad.priority = 0;
        const AdmissionResult r = sched.submit(bad);
        EXPECT_FALSE(r.admitted);
        EXPECT_NE(r.reason.find("priority"), std::string::npos) << r.reason;
    }
    {
        std::atomic<bool> flag{false};
        JobSpec bad = base;
        bad.config.cancel(&flag);
        const AdmissionResult r = sched.submit(bad);
        EXPECT_FALSE(r.admitted);
        EXPECT_NE(r.reason.find("cancel"), std::string::npos) << r.reason;
    }
    {
        BufferPool pool;
        JobSpec bad = base;
        bad.config.io(IoPolicy{}.pool(&pool));
        const AdmissionResult r = sched.submit(bad);
        EXPECT_FALSE(r.admitted);
        EXPECT_NE(r.reason.find("shared"), std::string::npos) << r.reason;
    }
    {
        Tracer tracer;
        JobSpec bad = base;
        bad.config.observability(ObsPolicy{}.tracer(&tracer));
        const AdmissionResult r = sched.submit(bad);
        EXPECT_FALSE(r.admitted);
        EXPECT_NE(r.reason.find("observability"), std::string::npos) << r.reason;
    }
    {
        JobSpec bad = base;
        bad.m = 0; // PdmConfig::validate rejects
        const AdmissionResult r = sched.submit(bad);
        EXPECT_FALSE(r.admitted);
        EXPECT_FALSE(r.reason.empty());
    }
}

TEST(SvcAdmissionTest, ZeroCapacityQueueRejectsEverything) {
    DiskArray disks(8, 64);
    SchedulerConfig cfg;
    cfg.queue_capacity = 0;
    SortScheduler sched(disks, cfg);
    const AdmissionResult r = sched.submit(small_spec("nope"));
    EXPECT_FALSE(r.admitted);
    EXPECT_NE(r.reason.find("queue full"), std::string::npos) << r.reason;
}

TEST(SvcAdmissionTest, FullQueueRejectsUntilSlotsFree) {
    DiskArray disks(8, 64);
    SchedulerConfig cfg;
    cfg.max_active = 1;
    cfg.queue_capacity = 1;
    cfg.async_io = false;
    SortScheduler sched(disks, cfg);

    const AdmissionResult running = sched.submit(big_spec("running"));
    ASSERT_TRUE(running.admitted) << running.reason;
    const AdmissionResult queued = sched.submit(small_spec("queued"));
    ASSERT_TRUE(queued.admitted) << queued.reason;

    const AdmissionResult overflow = sched.submit(small_spec("overflow"));
    EXPECT_FALSE(overflow.admitted);
    EXPECT_NE(overflow.reason.find("queue full"), std::string::npos) << overflow.reason;

    sched.cancel(running.id);
    sched.cancel(queued.id);
    sched.wait_all();
}

TEST(SvcAdmissionTest, ScratchBudgetChargesAndReleases) {
    DiskArray disks(8, 64); // B = 64: estimate = 4 * ceil(n / 64)
    SchedulerConfig cfg;
    cfg.max_active = 1;
    cfg.async_io = false;
    cfg.scratch_block_budget = 5000;
    SortScheduler sched(disks, cfg);

    JobSpec mid = small_spec("mid");
    mid.n = 64000; // estimate 4000 <= 5000
    EXPECT_EQ(sched.estimate_scratch_blocks(mid), 4000u);

    JobSpec whale = small_spec("whale");
    whale.n = 1u << 20; // estimate 65536 > whole budget
    const AdmissionResult too_big = sched.submit(whale);
    EXPECT_FALSE(too_big.admitted);
    EXPECT_NE(too_big.reason.find("over the whole budget"), std::string::npos) << too_big.reason;

    const AdmissionResult first = sched.submit(mid);
    ASSERT_TRUE(first.admitted) << first.reason;
    JobSpec second_spec = mid;
    second_spec.name = "mid-2";
    const AdmissionResult second = sched.submit(second_spec);
    EXPECT_FALSE(second.admitted); // 4000 committed + 4000 > 5000
    EXPECT_NE(second.reason.find("exhausted"), std::string::npos) << second.reason;

    // Terminal jobs release their charge: after the first finishes the
    // same spec is admissible again.
    ASSERT_EQ(sched.wait(first.id).state, JobState::kSucceeded);
    const AdmissionResult again = sched.submit(second_spec);
    EXPECT_TRUE(again.admitted) << again.reason;
    EXPECT_EQ(sched.wait(again.id).state, JobState::kSucceeded);
}

// ---------------------------------------------------------------------------
// Live observatory (DESIGN.md §16)
// ---------------------------------------------------------------------------

TEST(SvcObservatoryTest, QueuedStatusReportsPositionAndReason) {
    DiskArray disks(8, 64);
    SchedulerConfig cfg;
    cfg.max_active = 1;
    cfg.async_io = false;
    SortScheduler sched(disks, cfg);

    const AdmissionResult running = sched.submit(big_spec("running"));
    ASSERT_TRUE(running.admitted) << running.reason;
    const AdmissionResult first = sched.submit(small_spec("first-queued"));
    ASSERT_TRUE(first.admitted) << first.reason;
    const AdmissionResult second = sched.submit(small_spec("second-queued"));
    ASSERT_TRUE(second.admitted) << second.reason;

    const JobStatus head = sched.status(first.id);
    if (head.state == JobState::kQueued) {
        EXPECT_EQ(head.queue_position, 0u);
        EXPECT_NE(head.waiting_reason.find("active slots"), std::string::npos)
            << head.waiting_reason;
    }
    const JobStatus tail = sched.status(second.id);
    if (tail.state == JobState::kQueued) {
        EXPECT_EQ(tail.queue_position, 1u);
        EXPECT_NE(tail.waiting_reason.find("behind 1 queued job"), std::string::npos)
            << tail.waiting_reason;
    }
    // A running job reports no queue diagnostics.
    const JobStatus active = sched.status(running.id);
    if (active.state == JobState::kRunning) {
        EXPECT_TRUE(active.waiting_reason.empty());
    }

    sched.cancel(running.id);
    sched.cancel(first.id);
    sched.cancel(second.id);
    sched.wait_all();
}

TEST(SvcObservatoryTest, ProgressAdvancesAndFreezesAtDone) {
    DiskArray disks(8, 64);
    SchedulerConfig cfg;
    cfg.max_active = 1;
    cfg.async_io = false;
    SortScheduler sched(disks, cfg);
    const AdmissionResult adm = sched.submit(big_spec("tracked"));
    ASSERT_TRUE(adm.admitted) << adm.reason;

    // Progress must move through real pipeline phases while running. Poll
    // for the whole life of the job (generous cap only as a hang guard):
    // under slowdowns like TSan the first live phase can appear seconds in.
    bool saw_live_phase = false;
    for (int i = 0; i < 120'000; ++i) {
        const JobStatus st = sched.status(adm.id);
        if (st.state != JobState::kQueued && st.state != JobState::kRunning) break;
        if (st.state == JobState::kRunning && st.progress.records_total > 0 &&
            st.progress.phase != "idle") {
            saw_live_phase = true;
            EXPECT_LE(st.progress.records_emitted, st.progress.records_total);
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const JobStatus done = sched.wait(adm.id);
    ASSERT_EQ(done.state, JobState::kSucceeded) << done.error;
    EXPECT_TRUE(saw_live_phase);
    EXPECT_EQ(done.progress.phase, "done");
    EXPECT_EQ(done.progress.records_emitted, done.progress.records_total);
    EXPECT_EQ(done.progress.records_total, big_spec("tracked").n);
    EXPECT_EQ(done.progress.eta_seconds, 0.0);
    EXPECT_GT(done.progress.io_steps, 0u);
    expect_budget_closed(done);
}

// Compiled out with obs: the publish paths guard on metrics(), which is
// constexpr nullptr under BALSORT_NO_OBS, so the registry never fills and
// there is nothing to scrape.
#ifndef BALSORT_NO_OBS
TEST(SvcObservatoryTest, ExpositionServesMidRunDuringConcurrentSort) {
    DiskArray disks(8, 64);
    MetricsRegistry registry;
    SchedulerConfig cfg;
    cfg.max_active = 4;
    cfg.async_io = false;
    cfg.metrics = &registry;
    SortScheduler sched(disks, cfg);

    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 4; ++i) {
        AdmissionResult adm = sched.submit(big_spec("expo" + std::to_string(i)));
        ASSERT_TRUE(adm.admitted) << adm.reason;
        ids.push_back(adm.id);
    }
    // Scrape mid-run: wait until at least one job is running, then render.
    std::string mid;
    for (int i = 0; i < 2000 && mid.empty(); ++i) {
        for (std::uint64_t id : ids) {
            if (sched.status(id).state == JobState::kRunning) {
                sched.publish_stats();
                mid = exposition_text(registry);
                break;
            }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_FALSE(mid.empty()) << "no job was ever observed running";
    EXPECT_NE(mid.find("# TYPE balsort_svc_jobs_active gauge"), std::string::npos);
    EXPECT_NE(mid.find("balsort_executor_queue_depth"), std::string::npos);
    // Exposition format sanity: every non-comment line is "name value" with
    // a parseable numeric value.
    std::istringstream lines(mid);
    std::string line;
    std::size_t samples = 0;
    while (std::getline(lines, line)) {
        if (line.empty() || line[0] == '#') continue;
        const auto space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        const std::string value = line.substr(space + 1);
        char* end = nullptr;
        std::strtod(value.c_str(), &end);
        EXPECT_TRUE(end != nullptr && *end == '\0') << line;
        ++samples;
    }
    EXPECT_GT(samples, 10u);

    for (const JobStatus& st : sched.wait_all()) {
        EXPECT_EQ(st.state, JobState::kSucceeded) << st.name << ": " << st.error;
    }
    // After the last job, the live gauges settle back to idle.
    sched.publish_stats();
    const std::string after = exposition_text(registry);
    EXPECT_NE(after.find("balsort_svc_jobs_active 0"), std::string::npos);
    EXPECT_NE(after.find("balsort_svc_jobs_queued 0"), std::string::npos);
}
#endif // BALSORT_NO_OBS

#ifndef BALSORT_NO_OBS
TEST(SvcObservatoryTest, FlightRecorderOverheadGuard) {
    // The flight recorder is always on — this is the overhead guard: with
    // the recorder demonstrably recording (note_count advances), every
    // model quantity stays byte-identical across repeat runs, and the dump
    // is well-formed Chrome-trace JSON.
    const std::uint64_t notes_before = FlightRecorder::instance().note_count();
    const auto specs = make_specs(2);
    const auto a = run_schedule(specs, DiskBackend::kMemory, /*async_io=*/true, 2);
    const auto b = run_schedule(specs, DiskBackend::kMemory, /*async_io=*/true, 2);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(specs[i].name);
        ASSERT_EQ(a[i].state, JobState::kSucceeded) << a[i].error;
        ASSERT_EQ(b[i].state, JobState::kSucceeded) << b[i].error;
        EXPECT_EQ(a[i].io.io_steps(), b[i].io.io_steps());
        EXPECT_EQ(a[i].output_hash, b[i].output_hash);
    }
    EXPECT_GT(FlightRecorder::instance().note_count(), notes_before)
        << "recorder saw no events during two schedules";

    std::ostringstream dump;
    FlightRecorder::instance().dump(dump);
    const std::string json = dump.str();
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 40);
    EXPECT_EQ(json.substr(json.size() - 2), "]}");
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}
#endif

// ---------------------------------------------------------------------------
// SortJobConfig policy validation
// ---------------------------------------------------------------------------

TEST(SvcConfigTest, PolicyValidationRejectsIncoherentCombos) {
    BufferPool pool;
    EXPECT_THROW(IoPolicy{}.pooled(false).pool(&pool).validate(), std::invalid_argument);
    EXPECT_THROW(IoPolicy{}.pooled(false).pool_retain(123).validate(), std::invalid_argument);
    EXPECT_THROW(IoPolicy{}.pool(&pool).pool_retain(123).validate(), std::invalid_argument);
    EXPECT_NO_THROW(IoPolicy{}.pool(&pool).validate());
    EXPECT_NO_THROW(IoPolicy{}.pooled(false).validate());

    EXPECT_THROW(DurabilityPolicy{}.resume("ck.bin").validate(), std::invalid_argument);
    EXPECT_THROW(DurabilityPolicy{}.hook([](std::uint64_t) {}).validate(),
                 std::invalid_argument);
    EXPECT_NO_THROW(DurabilityPolicy{}.checkpoint("ck.bin").resume("ck.bin").validate());

    EXPECT_NO_THROW(SortJobConfig{}.validate(8));
    EXPECT_THROW(SortJobConfig{}.io(IoPolicy{}.pooled(false).pool(&pool)).validate(8),
                 std::invalid_argument);
}

TEST(SvcConfigTest, OptionsFlattenIsLossless) {
    std::atomic<bool> flag{false};
    BufferPool pool;
    SortJobConfig cfg;
    cfg.buckets(12, BucketPolicy::kFixed)
        .pivots(PivotMethod::kStreamingSketch)
        .threads(3)
        .reposition(true)
        .cancel(&flag)
        .io(IoPolicy{}.async(AsyncIo::kOn).prefetch(false).pool(&pool))
        .durability(DurabilityPolicy{}.checkpoint("ck.bin"));
    const SortOptions o = cfg.options();
    EXPECT_EQ(o.s_target, 12u);
    EXPECT_EQ(o.bucket_policy, BucketPolicy::kFixed);
    EXPECT_EQ(o.pivot_method, PivotMethod::kStreamingSketch);
    EXPECT_EQ(o.max_threads, 3u);
    EXPECT_TRUE(o.reposition_buckets);
    EXPECT_EQ(o.cancel, &flag);
    EXPECT_EQ(o.async_io, AsyncIo::kOn);
    EXPECT_FALSE(o.cross_bucket_prefetch);
    EXPECT_EQ(o.shared_pool, &pool);
    EXPECT_EQ(o.checkpoint_path, "ck.bin");
}

// ---------------------------------------------------------------------------
// BufferPool retention cap
// ---------------------------------------------------------------------------

TEST(SvcBufferPoolTest, UncappedPoolRetainsEverything) {
    BufferPool pool; // cap = 0: unlimited retention, nothing ever dropped
    { BufferPool::Lease a = pool.acquire(100); EXPECT_EQ(a->size(), 100u); }
    BufferPool::Stats st = pool.stats();
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.dropped, 0u);
    EXPECT_GE(st.retained_records, 100u);

    { BufferPool::Lease b = pool.acquire(80); } // served from the recycled buffer
    st = pool.stats();
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.dropped, 0u);

    {
        BufferPool::Lease a = pool.acquire(1000);
        BufferPool::Lease b = pool.acquire(2000);
    }
    st = pool.stats();
    EXPECT_EQ(st.dropped, 0u);
    EXPECT_GE(st.retained_records, 3000u);
    EXPECT_GE(st.high_water_records, st.retained_records);
}

TEST(SvcBufferPoolTest, RetentionCapDropsBeyondCap) {
    BufferPool pool(500);
    {
        BufferPool::Lease a = pool.acquire(400);
        BufferPool::Lease b = pool.acquire(400);
    } // first return retained (400 <= 500), second would exceed the cap
    const BufferPool::Stats st = pool.stats();
    EXPECT_EQ(st.dropped, 1u);
    EXPECT_LE(st.retained_records, 500u);
}

TEST(SvcBufferPoolTest, NullPoolYieldsUnpooledLease) {
    BufferPool::Lease lease = BufferPool::acquire_from(nullptr, 64);
    ASSERT_EQ(lease->size(), 64u);
    (*lease)[0] = Record{1, 2};
    EXPECT_EQ((*lease)[0].key, 1u);
}

} // namespace
} // namespace balsort
