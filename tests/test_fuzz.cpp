// Differential fuzzing: random machine shapes x random workloads x random
// option combinations, every algorithm cross-checked against std::sort.
// These tests are the repository's last line of defence: any silent
// record loss, ordering bug, or model violation under an untested
// parameter interaction surfaces here.
#include <gtest/gtest.h>

#include "baselines/greed_sort.hpp"
#include "baselines/rand_dist.hpp"
#include "baselines/striped_merge.hpp"
#include "core/balance_sort.hpp"
#include "core/hier_sort.hpp"
#include "util/random.hpp"
#include "util/workload.hpp"

namespace balsort {
namespace {

struct FuzzCase {
    PdmConfig cfg;
    Workload workload;
    std::uint64_t seed;
};

FuzzCase random_case(Xoshiro256& rng) {
    FuzzCase f;
    f.cfg.d = 1 + static_cast<std::uint32_t>(rng.below(12));
    f.cfg.b = 1 + static_cast<std::uint32_t>(rng.below(12));
    const std::uint64_t min_m = 2ull * f.cfg.d * f.cfg.b;
    f.cfg.m = min_m + rng.below(512);
    f.cfg.n = 1 + rng.below(6000);
    f.cfg.p = 1 + static_cast<std::uint32_t>(rng.below(4));
    f.workload = all_workloads()[rng.below(all_workloads().size())];
    f.seed = rng();
    return f;
}

std::vector<Record> reference_sorted(std::vector<Record> v) {
    std::stable_sort(v.begin(), v.end(), KeyLess{});
    return v;
}

void expect_same_keys(const std::vector<Record>& got, const std::vector<Record>& want,
                      const std::string& label) {
    ASSERT_EQ(got.size(), want.size()) << label;
    for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].key, want[i].key) << label << " position " << i;
    }
}

TEST(Fuzz, BalanceSortRandomOptionMatrix) {
    Xoshiro256 rng(0xBA1A);
    for (int trial = 0; trial < 60; ++trial) {
        FuzzCase f = random_case(rng);
        auto input = generate(f.workload, f.cfg.n, f.seed);
        auto want = reference_sorted(input);
        SortOptions opt;
        opt.balance.matching =
            static_cast<MatchStrategy>(rng.below(3));
        opt.balance.aux = static_cast<AuxRule>(rng.below(2));
        opt.balance.defer = static_cast<DeferPolicy>(rng.below(2));
        opt.balance.assign = static_cast<AssignPolicy>(rng.below(3));
        opt.pivot_method = static_cast<PivotMethod>(rng.below(2));
        opt.internal_sort = static_cast<InternalSort>(rng.below(2));
        opt.synchronized_writes = rng.below(2) == 1;
        opt.reposition_buckets = rng.below(2) == 1;
        opt.balance.check_invariants = opt.balance.aux == AuxRule::kPaperMedian;
        opt.balance.seed = rng();
        DiskArray disks(f.cfg.d, f.cfg.b);
        std::vector<Record> sorted;
        ASSERT_NO_THROW(sorted = balance_sort_records(disks, input, f.cfg, opt, nullptr))
            << "trial " << trial << " n=" << f.cfg.n << " m=" << f.cfg.m << " d=" << f.cfg.d
            << " b=" << f.cfg.b << " w=" << to_string(f.workload);
        expect_same_keys(sorted, want,
                         "balance trial " + std::to_string(trial) + " w=" +
                             to_string(f.workload));
        ASSERT_TRUE(is_sorted_permutation_of(input, sorted)) << "trial " << trial;
    }
}

TEST(Fuzz, BaselinesRandomShapes) {
    Xoshiro256 rng(0xF00D);
    for (int trial = 0; trial < 30; ++trial) {
        FuzzCase f = random_case(rng);
        auto input = generate(f.workload, f.cfg.n, f.seed);
        auto want = reference_sorted(input);
        const int which = static_cast<int>(rng.below(4));
        DiskArray disks(f.cfg.d, f.cfg.b);
        BlockRun run = write_striped(disks, input);
        std::vector<Record> sorted;
        std::string label;
        switch (which) {
            case 0:
                label = "striped_merge";
                sorted = read_run(disks, striped_merge_sort(disks, run, f.cfg, nullptr));
                break;
            case 1:
                label = "greed";
                sorted = read_run(disks, greed_sort(disks, run, f.cfg, nullptr));
                break;
            case 2:
                label = "greed_approx";
                sorted = read_run(disks, greed_sort_approximate(disks, run, f.cfg, nullptr));
                break;
            default:
                label = "rand_dist";
                sorted = read_run(disks, rand_dist_sort(disks, run, f.cfg, rng(), nullptr));
                break;
        }
        expect_same_keys(sorted, want,
                         label + " trial " + std::to_string(trial) + " n=" +
                             std::to_string(f.cfg.n) + " d=" + std::to_string(f.cfg.d) +
                             " b=" + std::to_string(f.cfg.b) + " m=" +
                             std::to_string(f.cfg.m) + " w=" + to_string(f.workload));
    }
}

TEST(Fuzz, HierarchyRandomModels) {
    Xoshiro256 rng(0x41EB);
    for (int trial = 0; trial < 20; ++trial) {
        HierSortConfig cfg;
        cfg.h = std::uint32_t{1} << (2 + rng.below(5)); // 4..64
        const int family = static_cast<int>(rng.below(3));
        const double alpha = 0.25 + 0.25 * static_cast<double>(rng.below(7));
        switch (family) {
            case 0:
                cfg.model = rng.below(2) == 0 ? HierModelSpec::hmm(CostFn::log())
                                              : HierModelSpec::hmm(CostFn::power(alpha));
                break;
            case 1:
                cfg.model = rng.below(2) == 0 ? HierModelSpec::bt(CostFn::log())
                                              : HierModelSpec::bt(CostFn::power(alpha));
                break;
            default:
                cfg.model = HierModelSpec::umh(2.0 + rng.below(7),
                                               rng.below(2) == 0 ? 1.0 : 0.5);
                break;
        }
        cfg.interconnect = static_cast<Interconnect>(rng.below(3));
        const std::uint64_t n = 1 + rng.below(4000);
        const Workload w = all_workloads()[rng.below(all_workloads().size())];
        auto input = generate(w, n, rng());
        auto want = reference_sorted(input);
        HierSortReport rep;
        auto sorted = hier_sort(input, cfg, &rep);
        expect_same_keys(sorted, want,
                         cfg.model.name() + " trial " + std::to_string(trial) + " h=" +
                             std::to_string(cfg.h) + " n=" + std::to_string(n));
        EXPECT_TRUE(rep.mechanics.balance.invariant2_held) << "trial " << trial;
    }
}

TEST(Fuzz, RepeatedSortsOnOneArrayWithReleases) {
    // Allocator stress: many sorts sharing one array, each releasing its
    // bucket space; inputs must stay intact and outputs correct.
    Xoshiro256 rng(0xCAFE);
    PdmConfig cfg{.n = 0, .m = 512, .d = 6, .b = 4, .p = 1};
    DiskArray disks(cfg.d, cfg.b);
    std::vector<std::pair<BlockRun, std::vector<Record>>> kept;
    for (int round = 0; round < 10; ++round) {
        cfg.n = 500 + rng.below(3000);
        auto input = generate(all_workloads()[round % all_workloads().size()], cfg.n, round);
        BlockRun run = write_striped(disks, input);
        auto sorted = read_run(disks, balance_sort(disks, run, cfg, {}, nullptr));
        ASSERT_TRUE(is_sorted_permutation_of(input, sorted)) << "round " << round;
        kept.emplace_back(run, input);
    }
    // All earlier inputs still readable and intact (released blocks never
    // overlapped live ones).
    for (const auto& [run, input] : kept) {
        EXPECT_EQ(read_run(disks, run), input);
    }
}

} // namespace
} // namespace balsort
