// Sort a binary file of records that does not fit in memory, using
// file-backed simulated parallel disks — the paper's motivating scenario
// (§1) end to end: records live on storage, memory holds only M of them.
//
//   ./external_sort_files [N] [M] [D] [B] [scratch-dir]
//
// The example creates an unsorted input file, spreads it across D scratch
// disk files, runs Balance Sort, writes the sorted output file, and
// verifies it. All I/O statistics reported are real pread/pwrite traffic.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "balsort.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace balsort;

namespace {

void write_record_file(const std::string& path, const std::vector<Record>& records) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        std::perror("fopen");
        std::exit(1);
    }
    std::fwrite(records.data(), sizeof(Record), records.size(), f);
    std::fclose(f);
}

std::vector<Record> read_record_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        std::perror("fopen");
        std::exit(1);
    }
    std::fseek(f, 0, SEEK_END);
    const long bytes = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<Record> records(static_cast<std::size_t>(bytes) / sizeof(Record));
    const std::size_t got = std::fread(records.data(), sizeof(Record), records.size(), f);
    std::fclose(f);
    records.resize(got);
    return records;
}

} // namespace

int main(int argc, char** argv) {
    PdmConfig cfg;
    cfg.n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1u << 19;
    cfg.m = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1u << 14;
    cfg.d = argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 8;
    cfg.b = argc > 4 ? static_cast<std::uint32_t>(std::atoi(argv[4])) : 128;
    cfg.p = 2;
    const std::string dir = argc > 5 ? argv[5] : "/tmp";
    const std::string in_path = dir + "/balsort_example_input.bin";
    const std::string out_path = dir + "/balsort_example_sorted.bin";

    std::cout << "External file sort: N=" << cfg.n << " records ("
              << (cfg.n * sizeof(Record)) / (1024 * 1024) << " MiB), memory M=" << cfg.m
              << " records (" << (cfg.m * sizeof(Record)) / 1024 << " KiB), D=" << cfg.d
              << " scratch disks in " << dir << ", B=" << cfg.b << " records/block\n\n";

    // 1. Create the unsorted input file.
    auto input = generate(Workload::kZipf, cfg.n, 7);
    write_record_file(in_path, input);

    // 2. Load it onto the file-backed disk array, striped.
    DiskArray disks(cfg.d, cfg.b, DiskBackend::kFile, dir);
    Timer total;
    BlockRun run;
    {
        // Stream the input file through memory M records at a time.
        auto data = read_record_file(in_path);
        RunWriter writer(disks);
        for (std::size_t off = 0; off < data.size(); off += cfg.m) {
            const std::size_t len = std::min<std::size_t>(cfg.m, data.size() - off);
            writer.append(std::span<const Record>(data.data() + off, len));
        }
        run = writer.finish();
    }

    // 3. Sort.
    SortReport rep;
    Timer sort_timer;
    BlockRun sorted_run = balance_sort(disks, run, cfg, SortJobConfig{}, &rep);
    const double sort_secs = sort_timer.seconds();

    // 4. Write the sorted output file (streamed).
    {
        RunReader reader(disks, sorted_run);
        std::vector<Record> out;
        out.reserve(sorted_run.n_records);
        std::vector<Record> chunk;
        while (reader.remaining() > 0) {
            chunk.resize(std::min<std::uint64_t>(cfg.m, reader.remaining()));
            reader.read(chunk);
            out.insert(out.end(), chunk.begin(), chunk.end());
        }
        write_record_file(out_path, out);
        if (!is_sorted_permutation_of(input, out)) {
            std::cerr << "FAILED: output file is not a sorted permutation of the input!\n";
            return 1;
        }
    }

    Table t({"metric", "value"});
    t.add_row({"parallel I/O steps", Table::num(rep.io.io_steps())});
    t.add_row({"blocks transferred", Table::num(rep.io.blocks_read + rep.io.blocks_written)});
    t.add_row({"bytes through scratch disks",
               Table::num((rep.io.blocks_read + rep.io.blocks_written) * cfg.b *
                          sizeof(Record))});
    t.add_row({"Theorem 1 formula", Table::fixed(rep.optimal_ios, 0)});
    t.add_row({"I/O ratio", Table::fixed(rep.io_ratio, 2)});
    t.add_row({"recursion levels", Table::num(rep.levels)});
    t.add_row({"worst bucket read ratio", Table::fixed(rep.worst_bucket_read_ratio, 2)});
    t.add_row({"sort wall time (s)", Table::fixed(sort_secs, 2)});
    t.add_row({"total wall time (s)", Table::fixed(total.seconds(), 2)});
    t.print(std::cout);
    std::cout << "\nOK: " << out_path << " verified sorted ("
              << sorted_run.n_records << " records).\n";

    std::filesystem::remove(in_path);
    std::filesystem::remove(out_path);
    return 0;
}
