// Quickstart: sort 1M records on a simulated 8-disk array with Balance
// Sort and print the paper's headline observables (Theorem 1 I/O count,
// Theorem 4 balance, invariants).
//
//   ./quickstart [N] [D] [M] [B]
#include <cstdlib>
#include <iostream>

#include "balsort.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
    using namespace balsort;

    PdmConfig cfg;
    cfg.n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1u << 20;
    cfg.d = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 8;
    cfg.m = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1u << 16;
    cfg.b = argc > 4 ? static_cast<std::uint32_t>(std::atoi(argv[4])) : 64;
    cfg.p = 4;

    std::cout << "Balance Sort quickstart (Nodine & Vitter, SPAA 1993)\n"
              << "  N=" << cfg.n << " records, M=" << cfg.m << ", D=" << cfg.d
              << " disks, B=" << cfg.b << " records/block, P=" << cfg.p << " CPUs\n\n";

    DiskArray disks(cfg.d, cfg.b);
    auto input = generate(Workload::kUniform, cfg.n, /*seed=*/2026);

    Timer timer;
    SortReport report;
    auto sorted = balance_sort_records(disks, input, cfg, SortJobConfig{}, &report);
    const double secs = timer.seconds();

    if (!is_sorted_permutation_of(input, sorted)) {
        std::cerr << "FAILED: output is not a sorted permutation of the input!\n";
        return 1;
    }

    Table t({"observable", "value"});
    t.add_row({"parallel I/O steps", Table::num(report.io.io_steps())});
    t.add_row({"Theorem 1 formula (N/DB)log(N/B)/log(M/B)", Table::fixed(report.optimal_ios, 0)});
    t.add_row({"I/O ratio (measured/formula)", Table::fixed(report.io_ratio, 2)});
    t.add_row({"disk utilization", Table::fixed(report.io.utilization(cfg.d), 2)});
    t.add_separator();
    t.add_row({"recursion levels", Table::num(report.levels)});
    t.add_row({"buckets per level (S)", Table::num(report.s_used)});
    t.add_row({"virtual disks (D')", Table::num(report.d_virtual)});
    t.add_separator();
    t.add_row({"worst bucket read ratio (Thm 4 bound ~2)",
               Table::fixed(report.worst_bucket_read_ratio, 2)});
    t.add_row({"Invariant 1 held", report.balance.invariant1_held ? "yes" : "NO"});
    t.add_row({"Invariant 2 held", report.balance.invariant2_held ? "yes" : "NO"});
    t.add_row({"blocks placed directly", Table::num(report.balance.direct_blocks)});
    t.add_row({"blocks placed by matching", Table::num(report.balance.matched_blocks)});
    t.add_row({"blocks deferred", Table::num(report.balance.deferred_blocks)});
    t.add_separator();
    t.add_row({"wall time (s)", Table::fixed(secs, 2)});
    t.print(std::cout);

    std::cout << "\nOK: output verified as a sorted permutation of the input.\n";
    return 0;
}
