// Explore the paper's parallel memory-hierarchy models (Figures 3-4):
// sort the same data on P-HMM, P-BT, and P-UMH under both interconnects
// and compare the charged sorting time against Theorems 2-3's formulas.
//
//   ./hierarchy_explorer [N] [H]
//
// Use this to answer "which machine model is my configuration bound by,
// and what does the theory predict" for a given (N, H).
#include <cstdlib>
#include <iostream>

#include "balsort.hpp"
#include "util/table.hpp"

using namespace balsort;

int main(int argc, char** argv) {
    const std::uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1u << 14;
    const std::uint32_t h = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 64;

    std::cout << "Parallel memory hierarchy explorer: N=" << n << " records across H=" << h
              << " hierarchies (H'=" << VirtualDisks::default_virtual_count(h)
              << " virtual hierarchies after partial striping)\n\n";

    auto input = generate(Workload::kUniform, n, 1);

    struct Config {
        HierModelSpec spec;
        Interconnect ic;
    };
    const Config configs[] = {
        {HierModelSpec::hmm(CostFn::log()), Interconnect::kPram},
        {HierModelSpec::hmm(CostFn::log()), Interconnect::kHypercube},
        {HierModelSpec::hmm(CostFn::power(0.5)), Interconnect::kPram},
        {HierModelSpec::hmm(CostFn::power(1.0)), Interconnect::kPram},
        {HierModelSpec::bt(CostFn::log()), Interconnect::kPram},
        {HierModelSpec::bt(CostFn::power(0.5)), Interconnect::kPram},
        {HierModelSpec::bt(CostFn::power(1.0)), Interconnect::kPram},
        {HierModelSpec::bt(CostFn::power(1.5)), Interconnect::kPram},
        {HierModelSpec::umh(4.0, 1.0), Interconnect::kPram},
        {HierModelSpec::umh(4.0, 0.5), Interconnect::kPram},
    };

    Table t({"model", "interconnect", "hier time", "ic charge", "total", "theorem formula",
             "ratio"});
    for (const auto& c : configs) {
        HierSortConfig cfg;
        cfg.h = h;
        cfg.model = c.spec;
        cfg.interconnect = c.ic;
        HierSortReport rep;
        auto sorted = hier_sort(input, cfg, &rep);
        if (!is_sorted_permutation_of(input, sorted)) {
            std::cerr << "FAILED: unsorted output on " << c.spec.name() << '\n';
            return 1;
        }
        t.add_row({c.spec.name(), to_string(c.ic), Table::fixed(rep.hierarchy_time, 0),
                   Table::fixed(rep.interconnect_charge, 0), Table::fixed(rep.total_time, 0),
                   Table::fixed(rep.formula, 0), Table::fixed(rep.ratio, 2)});
    }
    t.print(std::cout);

    std::cout <<
        "\nReading the table:\n"
        "  * 'hier time' is the access cost charged by the model's f(x) pricing rule;\n"
        "    'ic charge' is the interconnect time (T(H) per track + base-case sorts).\n"
        "  * 'theorem formula' is the Theorem 2/3 prediction for this (N, H, f);\n"
        "    'ratio' should be a modest constant — and stay put when you grow N.\n"
        "  * BT < HMM at equal f: block transfer amortizes the sequential phases.\n"
        "  * UMH with nu<1 (decaying bus bandwidth) prices deep levels polynomially.\n";
    return 0;
}
