// balsortd — the sort service front end (DESIGN.md §14): drives N
// concurrent sort jobs from a job-file over ONE shared disk array through
// the SortScheduler (admission control, deficit-round-robin I/O fairness,
// per-job accounting channels).
//
//   balsortd <job-file> [--disks D] [--block B] [--backend mem|file]
//            [--scratch DIR] [--max-active K] [--fairness F]
//            [--queue CAP] [--budget BLOCKS] [--manifest-dir DIR]
//            [--trace OUT.json] [--serial]
//   balsortd --selftest
//
// Job-file format: one job per line, whitespace-separated key=value
// pairs; '#' starts a comment. Keys (all optional, sane defaults):
//   name=<label>  n=<records>  workload=<uniform|gaussian|zipf|sorted|
//   reverse|nearly-sorted|dup-heavy|organ-pipe|all-equal>
//   seed=<u64>  m=<records>  p=<cpus>  priority=<weight>  verify=<0|1>
//   threads=<lanes>  (compute lanes on the scheduler's shared executor;
//   0/default = min(p, executor workers + 1))
//
// Example job-file (4 mixed jobs):
//   name=alpha n=200000 workload=uniform seed=1 m=8192 p=2
//   name=beta  n=150000 workload=zipf    seed=2 m=8192 p=2 priority=2
//   name=gamma n=100000 workload=sorted  seed=3 m=4096 p=1
//   name=delta n=250000 workload=organ-pipe seed=4 m=16384 p=2
//
// --serial runs the same jobs back-to-back (max_active=1) for a quick
// aggregate-throughput comparison; bench_svc measures this properly.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "balsort.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace balsort;

namespace {

[[noreturn]] void usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " <job-file> [--disks D] [--block B] [--backend mem|file]\n"
                 "          [--scratch DIR] [--max-active K] [--fairness F] [--queue CAP]\n"
                 "          [--budget BLOCKS] [--manifest-dir DIR] [--trace OUT.json] [--serial]\n"
                 "       "
              << argv0 << " --selftest\n";
    std::exit(2);
}

bool parse_workload(const std::string& s, Workload* out) {
    for (Workload w : all_workloads()) {
        if (to_string(w) == s) {
            *out = w;
            return true;
        }
    }
    return false;
}

/// One job per line: whitespace-separated key=value pairs, '#' comments.
std::vector<JobSpec> parse_job_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot open job-file " << path << '\n';
        std::exit(1);
    }
    std::vector<JobSpec> specs;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (const auto hash = line.find('#'); hash != std::string::npos) line.erase(hash);
        std::istringstream tokens(line);
        std::string tok;
        JobSpec spec;
        bool any = false;
        while (tokens >> tok) {
            const auto eq = tok.find('=');
            if (eq == std::string::npos) {
                std::cerr << path << ':' << lineno << ": expected key=value, got '" << tok
                          << "'\n";
                std::exit(2);
            }
            const std::string key = tok.substr(0, eq);
            const std::string val = tok.substr(eq + 1);
            any = true;
            if (key == "name") {
                spec.name = val;
            } else if (key == "n") {
                spec.n = std::strtoull(val.c_str(), nullptr, 10);
            } else if (key == "workload") {
                if (!parse_workload(val, &spec.workload)) {
                    std::cerr << path << ':' << lineno << ": unknown workload '" << val << "'\n";
                    std::exit(2);
                }
            } else if (key == "seed") {
                spec.seed = std::strtoull(val.c_str(), nullptr, 10);
            } else if (key == "m") {
                spec.m = std::strtoull(val.c_str(), nullptr, 10);
            } else if (key == "p") {
                spec.p = static_cast<std::uint32_t>(std::stoul(val));
            } else if (key == "priority") {
                spec.priority = static_cast<std::uint32_t>(std::stoul(val));
            } else if (key == "threads") {
                spec.config.threads(static_cast<std::uint32_t>(std::stoul(val)));
            } else if (key == "verify") {
                spec.verify = val != "0";
            } else {
                std::cerr << path << ':' << lineno << ": unknown key '" << key << "'\n";
                std::exit(2);
            }
        }
        if (any) {
            if (spec.name == "job") spec.name = "job" + std::to_string(specs.size() + 1);
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

int run_jobs(const std::vector<JobSpec>& specs, DiskArray& disks, SchedulerConfig cfg) {
    Timer wall;
    SortScheduler sched(disks, std::move(cfg));
    std::vector<std::uint64_t> ids;
    for (const JobSpec& spec : specs) {
        AdmissionResult adm = sched.submit(spec);
        if (!adm.admitted) {
            std::cerr << "job '" << spec.name << "' rejected: " << adm.reason << '\n';
            continue;
        }
        ids.push_back(adm.id);
    }
    Table t({"job", "state", "io_steps", "blocks", "output hash", "wall (s)"});
    int failures = 0;
    for (std::uint64_t id : ids) {
        const JobStatus st = sched.wait(id);
        std::ostringstream hash;
        hash << std::hex << st.output_hash;
        t.add_row({st.name, to_string(st.state), Table::num(st.io.io_steps()),
                   Table::num(st.io.blocks_read + st.io.blocks_written), hash.str(),
                   Table::fixed(st.elapsed_seconds, 2)});
        if (st.state != JobState::kSucceeded) {
            ++failures;
            if (!st.error.empty()) std::cerr << st.name << ": " << st.error << '\n';
        }
    }
    const double secs = wall.seconds();
    t.print(std::cout);
    const IoArbiter::Stats arb = sched.arbiter_stats();
    std::cout << "\n" << ids.size() << " jobs in " << Table::fixed(secs, 2)
              << " s wall; fairness gate waited " << arb.waits << " times over " << arb.refills
              << " refill rounds.\n";
    return failures == 0 ? 0 : 1;
}

int selftest() {
    // 4 mixed jobs on a shared 8-disk memory array; each job's model
    // accounting must come out byte-identical to a solo run of the same
    // spec — the service's core guarantee.
    std::vector<JobSpec> specs;
    const Workload kinds[] = {Workload::kUniform, Workload::kZipf, Workload::kOrganPipe,
                              Workload::kNearlySorted};
    for (int i = 0; i < 4; ++i) {
        JobSpec s;
        s.name = "self" + std::to_string(i + 1);
        s.n = 60000 + 10000 * static_cast<std::uint64_t>(i);
        s.workload = kinds[i];
        s.seed = 100 + static_cast<std::uint64_t>(i);
        s.m = 4096;
        s.p = 2;
        s.config.threads(2);
        specs.push_back(std::move(s));
    }

    // Solo goldens, one fresh array each.
    std::vector<std::uint64_t> solo_steps, solo_hashes;
    for (const JobSpec& spec : specs) {
        DiskArray disks(8, 64);
        SchedulerConfig cfg;
        cfg.max_active = 1;
        cfg.async_io = false;
        SortScheduler solo(disks, cfg);
        const JobStatus st = solo.wait(solo.submit(spec).id);
        if (st.state != JobState::kSucceeded) {
            std::cerr << "selftest: solo run of " << spec.name << " failed: " << st.error << '\n';
            return 1;
        }
        solo_steps.push_back(st.io.io_steps());
        solo_hashes.push_back(st.output_hash);
    }

    // Concurrent run on one shared array.
    DiskArray disks(8, 64);
    SchedulerConfig cfg;
    cfg.max_active = 4;
    cfg.async_io = false;
    SortScheduler sched(disks, cfg);
    std::vector<std::uint64_t> ids;
    for (const JobSpec& spec : specs) ids.push_back(sched.submit(spec).id);
    bool ok = true;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const JobStatus st = sched.wait(ids[i]);
        if (st.state != JobState::kSucceeded) {
            std::cerr << "selftest: " << st.name << " failed: " << st.error << '\n';
            ok = false;
            continue;
        }
        if (st.io.io_steps() != solo_steps[i] || st.output_hash != solo_hashes[i]) {
            std::cerr << "selftest: " << st.name << " diverged from solo run (io_steps "
                      << st.io.io_steps() << " vs " << solo_steps[i] << ")\n";
            ok = false;
        }
    }
    std::cout << (ok ? "selftest OK: 4 concurrent jobs byte-identical to solo runs\n"
                     : "selftest FAILED\n");
    return ok ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    std::string job_file, scratch = "/tmp", trace_path, backend = "mem";
    std::uint32_t d = 8, b = 64;
    SchedulerConfig cfg;
    bool serial = false;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) usage(argv[0]);
            return argv[++i];
        };
        if (a == "--selftest") {
            return selftest();
        } else if (a == "--disks") {
            d = static_cast<std::uint32_t>(std::stoul(next()));
        } else if (a == "--block") {
            b = static_cast<std::uint32_t>(std::stoul(next()));
        } else if (a == "--backend") {
            backend = next();
        } else if (a == "--scratch") {
            scratch = next();
        } else if (a == "--max-active") {
            cfg.max_active = static_cast<std::uint32_t>(std::stoul(next()));
        } else if (a == "--fairness") {
            cfg.fairness = std::strtod(next().c_str(), nullptr);
        } else if (a == "--queue") {
            cfg.queue_capacity = static_cast<std::uint32_t>(std::stoul(next()));
        } else if (a == "--budget") {
            cfg.scratch_block_budget = std::strtoull(next().c_str(), nullptr, 10);
        } else if (a == "--manifest-dir") {
            cfg.manifest_dir = next();
        } else if (a == "--trace") {
            trace_path = next();
        } else if (a == "--serial") {
            serial = true;
        } else if (!a.empty() && a[0] == '-') {
            usage(argv[0]);
        } else if (job_file.empty()) {
            job_file = a;
        } else {
            usage(argv[0]);
        }
    }
    if (job_file.empty()) usage(argv[0]);

    const auto specs = parse_job_file(job_file);
    if (specs.empty()) {
        std::cerr << job_file << ": no jobs\n";
        return 1;
    }
    if (serial) cfg.max_active = 1;
    // Size the shared executor to honor the widest threads= request even
    // on small hosts (validation rejects lanes the pool cannot provide;
    // oversubscription is the front end's call to make, not a job error).
    std::uint32_t widest = 0;
    for (const JobSpec& s : specs) widest = std::max(widest, s.config.compute_policy.threads);
    if (widest > 1) {
        const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
        cfg.executor_threads = std::max(widest - 1, hw);
    }
    if (backend != "mem" && backend != "file") usage(argv[0]);
    const DiskBackend be = backend == "file" ? DiskBackend::kFile : DiskBackend::kMemory;
    cfg.async_io = be == DiskBackend::kFile;

    Tracer tracer;
    if (!trace_path.empty()) cfg.trace = &tracer;

    DiskArray disks(d, b, be, scratch);
    std::cout << "balsortd: " << specs.size() << " jobs over a shared " << d << "-disk " << backend
              << " array (B=" << b << ", max_active=" << cfg.max_active
              << ", fairness=" << cfg.fairness << ")\n\n";
    const int rc = run_jobs(specs, disks, cfg);
    if (!trace_path.empty()) tracer.write_chrome_trace_file(trace_path);
    return rc;
}
