// balsortd — the sort service front end (DESIGN.md §14): drives N
// concurrent sort jobs from a job-file over ONE shared disk array through
// the SortScheduler (admission control, deficit-round-robin I/O fairness,
// per-job accounting channels).
//
//   balsortd <job-file> [--disks D] [--block B] [--backend mem|file]
//            [--scratch DIR] [--max-active K] [--fairness F]
//            [--queue CAP] [--budget BLOCKS] [--manifest-dir DIR]
//            [--trace OUT.json] [--serial] [--stats-port PORT]
//            [--stats-file PATH] [--tick SECONDS] [--flight-dump PATH]
//   balsortd --selftest [--stats-port PORT] [--stats-file PATH]
//
// Live observability (DESIGN.md §16): --stats-port serves Prometheus-style
// exposition text over HTTP/1.0 on 127.0.0.1 (try
// `curl localhost:PORT/metrics`); --stats-file rewrites the same text to a
// file every --tick seconds (plus a final snapshot) for socketless CI;
// --tick also prints a per-job progress/ETA line to stderr each interval;
// --flight-dump arms the flight recorder's auto-dump path (a Chrome-trace
// JSON of the last moments of every thread, written on faults, deadline
// expiries, and job failures); on a clean exit the same path gets a final
// dump, so the flag always yields a trace to open in about://tracing.
//
// Job-file format: one job per line, whitespace-separated key=value
// pairs; '#' starts a comment. Keys (all optional, sane defaults):
//   name=<label>  n=<records>  workload=<uniform|gaussian|zipf|sorted|
//   reverse|nearly-sorted|dup-heavy|organ-pipe|all-equal>
//   seed=<u64>  m=<records>  p=<cpus>  priority=<weight>  verify=<0|1>
//   threads=<lanes>  (compute lanes on the scheduler's shared executor;
//   0/default = min(p, executor workers + 1))
//   profile=<OUT.folded>  (sample the job's CPU stacks — SIGPROF,
//   DESIGN.md §17 — and write collapsed/folded stacks to this path after
//   the jobs drain; one process-wide sampler is shared, so overlapping
//   profiled jobs each get the union of samples)
//
// Example job-file (4 mixed jobs):
//   name=alpha n=200000 workload=uniform seed=1 m=8192 p=2
//   name=beta  n=150000 workload=zipf    seed=2 m=8192 p=2 priority=2
//   name=gamma n=100000 workload=sorted  seed=3 m=4096 p=1
//   name=delta n=250000 workload=organ-pipe seed=4 m=16384 p=2
//
// --serial runs the same jobs back-to-back (max_active=1) for a quick
// aggregate-throughput comparison; bench_svc measures this properly.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "balsort.hpp"
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace balsort;

namespace {

[[noreturn]] void usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " <job-file> [--disks D] [--block B] [--backend mem|file]\n"
                 "          [--scratch DIR] [--max-active K] [--fairness F] [--queue CAP]\n"
                 "          [--budget BLOCKS] [--manifest-dir DIR] [--trace OUT.json] [--serial]\n"
                 "          [--stats-port PORT] [--stats-file PATH] [--tick SECONDS]\n"
                 "          [--flight-dump PATH]\n"
                 "       "
              << argv0 << " --selftest [--stats-port PORT] [--stats-file PATH]\n";
    std::exit(2);
}

/// Observability front-end options (DESIGN.md §16).
struct StatsOptions {
    int port = -1;         ///< >= 0: serve exposition text on 127.0.0.1:port (0 = ephemeral)
    std::string file;      ///< non-empty: rewrite exposition text here every tick
    double tick = 0;       ///< > 0: progress/ETA ticker interval (seconds)
};

/// Serves Prometheus-style exposition text for one scheduler: a minimal
/// HTTP/1.0 responder on 127.0.0.1 (any request path gets the metrics) and
/// an optional periodic file snapshot. Every render calls
/// SortScheduler::publish_stats() first, so a scrape always sees live
/// gauges (executor queue depth, DRR deficits, per-disk in-flight, pool
/// occupancy, per-job progress).
class StatsService {
public:
    StatsService(SortScheduler& sched, MetricsRegistry& reg, const StatsOptions& opt)
        : sched_(sched), reg_(reg), file_(opt.file),
          interval_(opt.tick > 0 ? opt.tick : 0.5) {
        if (opt.port >= 0) open_server(opt.port);
        thread_ = std::thread([this] { loop(); });
    }
    ~StatsService() {
        stop_.store(true, std::memory_order_relaxed);
        if (thread_.joinable()) thread_.join();
        if (listen_fd_ >= 0) ::close(listen_fd_);
        if (!file_.empty()) write_file(); // final snapshot survives exit
    }
    StatsService(const StatsService&) = delete;
    StatsService& operator=(const StatsService&) = delete;

    /// The bound port (resolves --stats-port 0 to the kernel's pick).
    int port() const { return port_; }

private:
    std::string render() {
        sched_.publish_stats();
        return exposition_text(reg_);
    }

    void write_file() {
        sched_.publish_stats();
        write_exposition_file(reg_, file_);
    }

    void open_server(int port) {
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listen_fd_ < 0) {
            std::cerr << "balsortd: cannot open stats socket\n";
            return;
        }
        const int one = 1;
        ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<std::uint16_t>(port));
        if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
            ::listen(listen_fd_, 8) != 0) {
            std::cerr << "balsortd: cannot bind stats port " << port << '\n';
            ::close(listen_fd_);
            listen_fd_ = -1;
            return;
        }
        sockaddr_in bound{};
        socklen_t len = sizeof bound;
        if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
            port_ = ntohs(bound.sin_port);
        }
        std::cout << "stats: serving http://127.0.0.1:" << port_ << "/metrics\n";
    }

    void loop() {
        auto last_file = std::chrono::steady_clock::now();
        while (!stop_.load(std::memory_order_relaxed)) {
            if (listen_fd_ >= 0) {
                pollfd p{};
                p.fd = listen_fd_;
                p.events = POLLIN;
                if (::poll(&p, 1, 100) > 0 && (p.revents & POLLIN) != 0) serve_one();
            } else {
                std::this_thread::sleep_for(std::chrono::milliseconds(100));
            }
            const auto now = std::chrono::steady_clock::now();
            if (!file_.empty() &&
                std::chrono::duration<double>(now - last_file).count() >= interval_) {
                write_file();
                last_file = now;
            }
        }
    }

    void serve_one() {
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0) return;
        char req[1024];
        (void)::recv(client, req, sizeof req, 0); // request line is irrelevant
        const std::string body = render();
        std::ostringstream os;
        os << "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: "
           << body.size() << "\r\nConnection: close\r\n\r\n"
           << body;
        const std::string resp = os.str();
        std::size_t off = 0;
        while (off < resp.size()) {
            const ssize_t w = ::send(client, resp.data() + off, resp.size() - off, 0);
            if (w <= 0) break;
            off += static_cast<std::size_t>(w);
        }
        ::close(client);
    }

    SortScheduler& sched_;
    MetricsRegistry& reg_;
    std::string file_;
    double interval_;
    std::atomic<bool> stop_{false};
    std::thread thread_;
    int listen_fd_ = -1;
    int port_ = -1;
};

/// One progress line per non-terminal job, printed to stderr so the result
/// table on stdout stays machine-readable.
void print_progress(SortScheduler& sched, const std::vector<std::uint64_t>& ids) {
    for (std::uint64_t id : ids) {
        const JobStatus st = sched.status(id);
        if (st.state == JobState::kRunning) {
            std::ostringstream os;
            os << "[" << st.name << "] " << st.progress.phase << ' '
               << st.progress.records_emitted << '/' << st.progress.records_total
               << " records, io_steps=" << st.progress.io_steps;
            if (st.progress.eta_seconds >= 0) {
                os << ", eta " << Table::fixed(st.progress.eta_seconds, 1) << "s";
            }
            std::cerr << os.str() << '\n';
        } else if (st.state == JobState::kQueued) {
            std::cerr << "[" << st.name << "] queued at position " << st.queue_position << ": "
                      << st.waiting_reason << '\n';
        }
    }
}

bool parse_workload(const std::string& s, Workload* out) {
    for (Workload w : all_workloads()) {
        if (to_string(w) == s) {
            *out = w;
            return true;
        }
    }
    return false;
}

/// One job per line: whitespace-separated key=value pairs, '#' comments.
std::vector<JobSpec> parse_job_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot open job-file " << path << '\n';
        std::exit(1);
    }
    std::vector<JobSpec> specs;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (const auto hash = line.find('#'); hash != std::string::npos) line.erase(hash);
        std::istringstream tokens(line);
        std::string tok;
        JobSpec spec;
        bool any = false;
        while (tokens >> tok) {
            const auto eq = tok.find('=');
            if (eq == std::string::npos) {
                std::cerr << path << ':' << lineno << ": expected key=value, got '" << tok
                          << "'\n";
                std::exit(2);
            }
            const std::string key = tok.substr(0, eq);
            const std::string val = tok.substr(eq + 1);
            any = true;
            if (key == "name") {
                spec.name = val;
            } else if (key == "n") {
                spec.n = std::strtoull(val.c_str(), nullptr, 10);
            } else if (key == "workload") {
                if (!parse_workload(val, &spec.workload)) {
                    std::cerr << path << ':' << lineno << ": unknown workload '" << val << "'\n";
                    std::exit(2);
                }
            } else if (key == "seed") {
                spec.seed = std::strtoull(val.c_str(), nullptr, 10);
            } else if (key == "m") {
                spec.m = std::strtoull(val.c_str(), nullptr, 10);
            } else if (key == "p") {
                spec.p = static_cast<std::uint32_t>(std::stoul(val));
            } else if (key == "priority") {
                spec.priority = static_cast<std::uint32_t>(std::stoul(val));
            } else if (key == "threads") {
                spec.config.threads(static_cast<std::uint32_t>(std::stoul(val)));
            } else if (key == "verify") {
                spec.verify = val != "0";
            } else if (key == "profile") {
                spec.profile_path = val;
            } else {
                std::cerr << path << ':' << lineno << ": unknown key '" << key << "'\n";
                std::exit(2);
            }
        }
        if (any) {
            if (spec.name == "job") spec.name = "job" + std::to_string(specs.size() + 1);
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

int run_jobs(const std::vector<JobSpec>& specs, DiskArray& disks, SchedulerConfig cfg,
             const StatsOptions& stats) {
    Timer wall;
    MetricsRegistry* reg = cfg.metrics;
    SortScheduler sched(disks, std::move(cfg));
    std::unique_ptr<StatsService> server;
    if (reg != nullptr && (stats.port >= 0 || !stats.file.empty())) {
        server = std::make_unique<StatsService>(sched, *reg, stats);
    }
    // profile= jobs share one process-wide sampler; each job's sort holds
    // a nested ProfilerScope, so sampling covers exactly the union of the
    // profiled jobs' extents.
    std::unique_ptr<Profiler> profiler;
    for (const JobSpec& spec : specs) {
        if (!spec.profile_path.empty()) {
            profiler = std::make_unique<Profiler>();
            break;
        }
    }
    std::vector<std::uint64_t> ids;
    for (const JobSpec& spec : specs) {
        AdmissionResult adm = [&] {
            if (spec.profile_path.empty()) return sched.submit(spec);
            JobSpec profiled = spec;
            profiled.config.obs_policy.profiler = profiler.get();
            return sched.submit(profiled);
        }();
        if (!adm.admitted) {
            std::cerr << "job '" << spec.name << "' rejected: " << adm.reason << '\n';
            continue;
        }
        ids.push_back(adm.id);
    }
    std::atomic<bool> done{false};
    std::thread ticker;
    if (stats.tick > 0) {
        ticker = std::thread([&] {
            const auto interval = std::chrono::duration<double>(stats.tick);
            while (!done.load(std::memory_order_relaxed)) {
                std::this_thread::sleep_for(interval);
                if (done.load(std::memory_order_relaxed)) break;
                print_progress(sched, ids);
            }
        });
    }
    Table t({"job", "state", "io_steps", "blocks", "output hash", "wall (s)", "compute (s)",
             "io-wait (s)", "gate-wait (s)"});
    int failures = 0;
    for (std::uint64_t id : ids) {
        const JobStatus st = sched.wait(id);
        std::ostringstream hash;
        hash << std::hex << st.output_hash;
        t.add_row({st.name, to_string(st.state), Table::num(st.io.io_steps()),
                   Table::num(st.io.blocks_read + st.io.blocks_written), hash.str(),
                   Table::fixed(st.elapsed_seconds, 2), Table::fixed(st.budget.compute_seconds, 2),
                   Table::fixed(st.budget.io_wait_seconds, 2),
                   Table::fixed(st.budget.gate_wait_seconds, 2)});
        if (st.state != JobState::kSucceeded) {
            ++failures;
            if (!st.error.empty()) std::cerr << st.name << ": " << st.error << '\n';
        }
    }
    done.store(true, std::memory_order_relaxed);
    if (ticker.joinable()) ticker.join();
    if (profiler != nullptr) {
        for (const JobSpec& spec : specs) {
            if (spec.profile_path.empty()) continue;
            if (profiler->folded_file(spec.profile_path)) {
                std::cerr << "profile: " << profiler->sample_count() << " samples -> "
                          << spec.profile_path << '\n';
            } else {
                std::cerr << "profile: cannot write " << spec.profile_path << '\n';
            }
        }
    }
    const double secs = wall.seconds();
    t.print(std::cout);
    const IoArbiter::Stats arb = sched.arbiter_stats();
    std::cout << "\n" << ids.size() << " jobs in " << Table::fixed(secs, 2)
              << " s wall; fairness gate waited " << arb.waits << " times over " << arb.refills
              << " refill rounds.\n";
    return failures == 0 ? 0 : 1;
}

int selftest(const StatsOptions& stats) {
    // 4 mixed jobs on a shared 8-disk memory array; each job's model
    // accounting must come out byte-identical to a solo run of the same
    // spec — the service's core guarantee.
    std::vector<JobSpec> specs;
    const Workload kinds[] = {Workload::kUniform, Workload::kZipf, Workload::kOrganPipe,
                              Workload::kNearlySorted};
    for (int i = 0; i < 4; ++i) {
        JobSpec s;
        s.name = "self" + std::to_string(i + 1);
        s.n = 60000 + 10000 * static_cast<std::uint64_t>(i);
        s.workload = kinds[i];
        s.seed = 100 + static_cast<std::uint64_t>(i);
        s.m = 4096;
        s.p = 2;
        s.config.threads(2);
        specs.push_back(std::move(s));
    }

    // Solo goldens, one fresh array each.
    std::vector<std::uint64_t> solo_steps, solo_hashes;
    for (const JobSpec& spec : specs) {
        DiskArray disks(8, 64);
        SchedulerConfig cfg;
        cfg.max_active = 1;
        cfg.async_io = false;
        SortScheduler solo(disks, cfg);
        const JobStatus st = solo.wait(solo.submit(spec).id);
        if (st.state != JobState::kSucceeded) {
            std::cerr << "selftest: solo run of " << spec.name << " failed: " << st.error << '\n';
            return 1;
        }
        solo_steps.push_back(st.io.io_steps());
        solo_hashes.push_back(st.output_hash);
    }

    // Concurrent run on one shared array.
    DiskArray disks(8, 64);
    MetricsRegistry registry;
    SchedulerConfig cfg;
    cfg.max_active = 4;
    cfg.async_io = false;
    if (stats.port >= 0 || !stats.file.empty()) cfg.metrics = &registry;
    SortScheduler sched(disks, cfg);
    std::unique_ptr<StatsService> server;
    if (cfg.metrics != nullptr) {
        server = std::make_unique<StatsService>(sched, registry, stats);
    }
    std::vector<std::uint64_t> ids;
    for (const JobSpec& spec : specs) ids.push_back(sched.submit(spec).id);
    bool ok = true;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const JobStatus st = sched.wait(ids[i]);
        if (st.state != JobState::kSucceeded) {
            std::cerr << "selftest: " << st.name << " failed: " << st.error << '\n';
            ok = false;
            continue;
        }
        if (st.io.io_steps() != solo_steps[i] || st.output_hash != solo_hashes[i]) {
            std::cerr << "selftest: " << st.name << " diverged from solo run (io_steps "
                      << st.io.io_steps() << " vs " << solo_steps[i] << ")\n";
            ok = false;
        }
    }
    std::cout << (ok ? "selftest OK: 4 concurrent jobs byte-identical to solo runs\n"
                     : "selftest FAILED\n");
    return ok ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    std::string job_file, scratch = "/tmp", trace_path, backend = "mem", flight_dump;
    std::uint32_t d = 8, b = 64;
    SchedulerConfig cfg;
    StatsOptions stats;
    bool serial = false, run_selftest = false;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) usage(argv[0]);
            return argv[++i];
        };
        if (a == "--selftest") {
            run_selftest = true;
        } else if (a == "--stats-port") {
            stats.port = static_cast<int>(std::stol(next()));
        } else if (a == "--stats-file") {
            stats.file = next();
        } else if (a == "--tick") {
            stats.tick = std::strtod(next().c_str(), nullptr);
        } else if (a == "--flight-dump") {
            flight_dump = next();
        } else if (a == "--disks") {
            d = static_cast<std::uint32_t>(std::stoul(next()));
        } else if (a == "--block") {
            b = static_cast<std::uint32_t>(std::stoul(next()));
        } else if (a == "--backend") {
            backend = next();
        } else if (a == "--scratch") {
            scratch = next();
        } else if (a == "--max-active") {
            cfg.max_active = static_cast<std::uint32_t>(std::stoul(next()));
        } else if (a == "--fairness") {
            cfg.fairness = std::strtod(next().c_str(), nullptr);
        } else if (a == "--queue") {
            cfg.queue_capacity = static_cast<std::uint32_t>(std::stoul(next()));
        } else if (a == "--budget") {
            cfg.scratch_block_budget = std::strtoull(next().c_str(), nullptr, 10);
        } else if (a == "--manifest-dir") {
            cfg.manifest_dir = next();
        } else if (a == "--trace") {
            trace_path = next();
        } else if (a == "--serial") {
            serial = true;
        } else if (!a.empty() && a[0] == '-') {
            usage(argv[0]);
        } else if (job_file.empty()) {
            job_file = a;
        } else {
            usage(argv[0]);
        }
    }
#ifndef BALSORT_NO_OBS
    if (!flight_dump.empty()) FlightRecorder::instance().set_auto_dump_path(flight_dump);
#else
    if (!flight_dump.empty()) {
        std::cerr << "balsortd: --flight-dump ignored (built with BALSORT_NO_OBS)\n";
    }
#endif
    // On a clean exit --flight-dump writes a final trace; a faulted run
    // already got the auto-dump frozen at the moment of failure, and a
    // late rewrite would bury it under post-mortem ring traffic.
    const auto final_flight_dump = [&flight_dump](int rc) {
#ifndef BALSORT_NO_OBS
        if (!flight_dump.empty() && rc == 0) {
            (void)FlightRecorder::instance().dump_file(flight_dump);
        }
#else
        (void)flight_dump;
        (void)rc;
#endif
    };
    if (run_selftest) {
        const int rc = selftest(stats);
        final_flight_dump(rc);
        return rc;
    }
    if (job_file.empty()) usage(argv[0]);

    const auto specs = parse_job_file(job_file);
    if (specs.empty()) {
        std::cerr << job_file << ": no jobs\n";
        return 1;
    }
    if (serial) cfg.max_active = 1;
    // Size the shared executor to honor the widest threads= request even
    // on small hosts (validation rejects lanes the pool cannot provide;
    // oversubscription is the front end's call to make, not a job error).
    std::uint32_t widest = 0;
    for (const JobSpec& s : specs) widest = std::max(widest, s.config.compute_policy.threads);
    if (widest > 1) {
        const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
        cfg.executor_threads = std::max(widest - 1, hw);
    }
    if (backend != "mem" && backend != "file") usage(argv[0]);
    const DiskBackend be = backend == "file" ? DiskBackend::kFile : DiskBackend::kMemory;
    cfg.async_io = be == DiskBackend::kFile;

    Tracer tracer;
    if (!trace_path.empty()) cfg.trace = &tracer;
    MetricsRegistry registry;
    if (stats.port >= 0 || !stats.file.empty()) cfg.metrics = &registry;

    DiskArray disks(d, b, be, scratch);
    std::cout << "balsortd: " << specs.size() << " jobs over a shared " << d << "-disk " << backend
              << " array (B=" << b << ", max_active=" << cfg.max_active
              << ", fairness=" << cfg.fairness << ")\n\n";
    const int rc = run_jobs(specs, disks, cfg, stats);
    if (!trace_path.empty()) tracer.write_chrome_trace_file(trace_path);
    final_flight_dump(rc);
    return rc;
}
