# ctest driver registering ci/check_exposition.py as a test: run the
# balsortd selftest with the stats service attached, then validate the
# Prometheus text-exposition snapshot with the same checker (and the same
# required series) the CI perf job uses. Invoked as
#   cmake -DBALSORTD=... -DPYTHON=... -DCHECKER=... -DOUT=... -P ...
execute_process(
  COMMAND "${BALSORTD}" --selftest --stats-file "${OUT}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "balsortd --selftest failed (rc=${rc})")
endif()
execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${OUT}" --min-samples 50
          --require balsort_svc_jobs_active
          --require balsort_svc_jobs_queued
          --require balsort_executor_queue_depth
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "check_exposition.py rejected the snapshot (rc=${rc}):\n${out}")
endif()
message(STATUS "exposition snapshot valid")
