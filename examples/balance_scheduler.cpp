// The paper's §6 outlook: "we expect our balance technique to be quite
// useful ... not only for sorting but also for other load-balancing
// applications on parallel disks and parallel memory hierarchies."
//
// This example uses the Balance machinery (histogram matrix X, auxiliary
// matrix A, Fast-Partial-Match) as a standalone *placement scheduler*: a
// stream of shards, each belonging to one of S tenants, must be spread
// over D storage nodes so that EVERY tenant's shards are balanced across
// nodes (so any single tenant can later be scanned at full parallelism).
// Round-robin balances the total but not per tenant; random placement
// balances per tenant only in expectation; the paper's machinery gives a
// deterministic per-tenant guarantee of <= median + 1 (Invariant 2).
//
//   ./balance_scheduler [shards] [tenants] [nodes]
#include <cstdlib>
#include <iostream>

#include "balsort.hpp"
// This example drives scheduling internals below the public surface.
#include "core/matching.hpp"
#include "core/matrices.hpp"
#include "util/math.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

using namespace balsort;

namespace {

/// Max over tenants of (max shards per node) / ceil(tenant total / nodes):
/// 1.0 means every tenant is perfectly spread.
double worst_tenant_skew(const std::vector<std::vector<std::uint32_t>>& counts,
                         std::uint32_t nodes) {
    double worst = 1.0;
    for (const auto& row : counts) {
        std::uint64_t total = 0, mx = 0;
        for (std::uint32_t c : row) {
            total += c;
            mx = std::max<std::uint64_t>(mx, c);
        }
        if (total == 0) continue;
        const double opt = static_cast<double>(ceil_div(total, nodes));
        worst = std::max(worst, static_cast<double>(mx) / opt);
    }
    return worst;
}

} // namespace

int main(int argc, char** argv) {
    const std::uint64_t n_shards = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;
    const std::uint32_t tenants = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 12;
    const std::uint32_t nodes = argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 16;

    std::cout << "Balance-as-a-scheduler: " << n_shards << " shards, " << tenants
              << " tenants (skewed popularity), " << nodes << " storage nodes\n\n";

    // Skewed tenant popularity (tenant 0 hottest), deterministic stream.
    Xoshiro256 stream(2026);
    auto tenant_of = [&]() -> std::uint32_t {
        // geometric-ish popularity
        std::uint32_t t = 0;
        while (t + 1 < tenants && stream.below(100) < 55) ++t;
        return t;
    };

    // --- Strategy 1: round-robin over nodes (ignores tenants). ---
    std::vector<std::vector<std::uint32_t>> rr(tenants, std::vector<std::uint32_t>(nodes, 0));
    // --- Strategy 2: uniform random node. ---
    std::vector<std::vector<std::uint32_t>> rnd(tenants, std::vector<std::uint32_t>(nodes, 0));
    // --- Strategy 3: the paper's balance machinery. ---
    std::vector<std::vector<std::uint32_t>> bal(tenants, std::vector<std::uint32_t>(nodes, 0));
    BalanceMatrices matrices(tenants, nodes);
    Xoshiro256 rnd_rng(7), match_rng(13);

    std::uint64_t matched = 0, deferred_retries = 0;
    std::uint32_t rr_cursor = 0;
    std::vector<std::uint32_t> pending_tenant; // shards of the current "track"
    auto flush_track = [&]() {
        // Assign this track's shards (<= nodes many, one per node) exactly
        // like Balance assigns virtual blocks: tentative cyclic placement,
        // ComputeAux, Fast-Partial-Match for offenders.
        std::vector<std::uint32_t> assigned(pending_tenant.size());
        for (std::size_t j = 0; j < pending_tenant.size(); ++j) {
            assigned[j] = (rr_cursor + static_cast<std::uint32_t>(j)) % nodes;
            matrices.increment(pending_tenant[j], assigned[j]);
        }
        rr_cursor = (rr_cursor + 1) % nodes;
        matrices.compute_aux();
        // Rebalance loop (same structure as Algorithm 5/6).
        for (int round = 0; round < 4; ++round) {
            std::vector<std::size_t> offender_js;
            for (std::size_t j = 0; j < pending_tenant.size(); ++j) {
                if (matrices.aux(pending_tenant[j], assigned[j]) >= 2) offender_js.push_back(j);
            }
            if (offender_js.empty()) break;
            std::vector<std::vector<std::uint32_t>> cands;
            std::vector<std::size_t> u;
            for (std::size_t j : offender_js) {
                if (u.size() >= std::max(1u, nodes / 2)) break;
                std::vector<std::uint32_t> c;
                for (std::uint32_t hn = 0; hn < nodes; ++hn) {
                    if (matrices.aux(pending_tenant[j], hn) == 0) c.push_back(hn);
                }
                if (!c.empty()) {
                    u.push_back(j);
                    cands.push_back(std::move(c));
                }
            }
            if (u.empty()) break;
            auto match = fast_partial_match(cands, nodes, MatchStrategy::kGreedy, match_rng);
            for (std::size_t i = 0; i < u.size(); ++i) {
                if (match.matched[i] == MatchResult::kUnmatched) {
                    ++deferred_retries;
                    continue;
                }
                matrices.decrement(pending_tenant[u[i]], assigned[u[i]]);
                matrices.increment(pending_tenant[u[i]], match.matched[i]);
                assigned[u[i]] = match.matched[i];
                ++matched;
            }
            matrices.compute_aux();
        }
        for (std::size_t j = 0; j < pending_tenant.size(); ++j) {
            bal[pending_tenant[j]][assigned[j]] += 1;
        }
        pending_tenant.clear();
    };

    for (std::uint64_t s = 0; s < n_shards; ++s) {
        const std::uint32_t t = tenant_of();
        rr[t][s % nodes] += 1;
        rnd[t][rnd_rng.below(nodes)] += 1;
        pending_tenant.push_back(t);
        if (pending_tenant.size() == nodes) flush_track();
    }
    flush_track();

    Table t({"strategy", "worst tenant skew", "deterministic?"});
    t.add_row({"round-robin", Table::fixed(worst_tenant_skew(rr, nodes), 3), "yes"});
    t.add_row({"uniform random", Table::fixed(worst_tenant_skew(rnd, nodes), 3), "no"});
    t.add_row({"Balance matrices + matching", Table::fixed(worst_tenant_skew(bal, nodes), 3),
               "yes"});
    t.print(std::cout);
    std::cout << "\n(skew = max over tenants of its most-loaded node / optimal; 1.0 is perfect.\n"
              << " The Balance scheduler re-placed " << matched << " shards via matching and\n"
              << " retried " << deferred_retries << ".)\n"
              << "\nInvariant 2 held at the end: " << (matrices.invariant2() ? "yes" : "NO")
              << " — every tenant within median+1 per node, the Theorem 4 guarantee.\n";
    return 0;
}
