// balsort_cli — a miniature external-sort utility built on the library:
// sorts a binary file of 16-byte records (u64 key, u64 payload) through a
// bounded amount of memory, using file-backed simulated parallel disks as
// scratch. The "downstream user" artifact: everything flows through the
// public API.
//
//   balsort_cli <input.bin> <output.bin> [--mem RECORDS] [--disks D]
//               [--block RECORDS] [--scratch DIR] [--algo balance|greed|merge]
//               [--sketch] [--stats] [--trace OUT.json] [--metrics-json OUT.json]
//               [--manifest OUT.json] [--balance-timeline OUT.json]
//               [--profile OUT.folded] [--profile-hz N]
//               [--checkpoint FILE] [--resume]
//
//   balsort_cli --selftest        # generate, sort, verify, clean up
//
// --trace writes a Chrome trace_event timeline (open in Perfetto or
// chrome://tracing), --metrics-json a latency-histogram snapshot,
// --manifest a RunManifest bundling config, report, and metrics
// (DESIGN.md §11), and --balance-timeline the per-track balance-quality
// recorder (DESIGN.md §12; balance algo only — it also rides along inside
// the manifest when both flags are given). --profile samples the run's
// CPU stacks (SIGPROF, DESIGN.md §17) into a collapsed/folded-stack file
// (flamegraph.pl / speedscope ready); with --trace the samples also land
// on "profile N" lanes of the timeline. Sampling changes no model
// quantity. --selftest composes with the artifact flags: the generated
// run writes the same trace/manifest/profile outputs, which is how CI
// produces its reference artifacts.
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>

#include "balsort.hpp"
// Baselines are internals, not part of the facade: include them directly.
#include "baselines/greed_sort.hpp"
#include "baselines/striped_merge.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace balsort;

namespace {

struct CliOptions {
    std::string input, output;
    std::uint64_t mem = 1 << 16;
    std::uint32_t disks = 8;
    std::uint32_t block = 256;
    std::string scratch = "/tmp";
    std::string algo = "balance";
    std::uint32_t threads = 0; ///< compute lanes; 0 = the library default
    std::string trace_path, metrics_path, manifest_path, timeline_path;
    std::string profile_path;
    std::uint32_t profile_hz = 997;
    std::string checkpoint;
    bool resume = false;
    bool sketch = false;
    bool stats = false;
    bool selftest = false;
    // Whether the size knobs came from the command line (selftest keeps
    // its small defaults otherwise).
    bool mem_set = false, disks_set = false, block_set = false;
};

[[noreturn]] void usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " <input.bin> <output.bin> [--mem R] [--disks D] [--block R]\n"
                 "          [--scratch DIR] [--algo balance|greed|merge] [--threads T]\n"
                 "          [--sketch] [--stats]\n"
                 "          [--trace OUT.json] [--metrics-json OUT.json] [--manifest OUT.json]\n"
                 "          [--balance-timeline OUT.json] [--profile OUT.folded] [--profile-hz N]\n"
                 "          [--checkpoint FILE] [--resume]\n"
                 "       "
              << argv0 << " --selftest\n";
    std::exit(2);
}

CliOptions parse(int argc, char** argv) {
    CliOptions o;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) usage(argv[0]);
            return argv[++i];
        };
        if (a == "--mem") {
            o.mem = std::strtoull(next().c_str(), nullptr, 10);
            o.mem_set = true;
        } else if (a == "--disks") {
            o.disks = static_cast<std::uint32_t>(std::stoul(next()));
            o.disks_set = true;
        } else if (a == "--block") {
            o.block = static_cast<std::uint32_t>(std::stoul(next()));
            o.block_set = true;
        } else if (a == "--scratch") {
            o.scratch = next();
        } else if (a == "--algo") {
            o.algo = next();
        } else if (a == "--threads") {
            o.threads = static_cast<std::uint32_t>(std::stoul(next()));
        } else if (a == "--trace") {
            o.trace_path = next();
        } else if (a == "--metrics-json") {
            o.metrics_path = next();
        } else if (a == "--manifest") {
            o.manifest_path = next();
        } else if (a == "--balance-timeline") {
            o.timeline_path = next();
        } else if (a == "--profile") {
            o.profile_path = next();
        } else if (a == "--profile-hz") {
            o.profile_hz = static_cast<std::uint32_t>(std::stoul(next()));
        } else if (a == "--checkpoint") {
            o.checkpoint = next();
        } else if (a == "--resume") {
            o.resume = true;
        } else if (a == "--sketch") {
            o.sketch = true;
        } else if (a == "--stats") {
            o.stats = true;
        } else if (a == "--selftest") {
            o.selftest = true;
        } else if (!a.empty() && a[0] == '-') {
            usage(argv[0]);
        } else {
            positional.push_back(a);
        }
    }
    if (!o.selftest) {
        if (positional.size() != 2) usage(argv[0]);
        o.input = positional[0];
        o.output = positional[1];
    }
    return o;
}

std::vector<Record> read_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        std::cerr << "cannot open " << path << '\n';
        std::exit(1);
    }
    std::fseek(f, 0, SEEK_END);
    const long bytes = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (bytes % static_cast<long>(sizeof(Record)) != 0) {
        std::cerr << path << ": size is not a multiple of 16 bytes\n";
        std::exit(1);
    }
    std::vector<Record> recs(static_cast<std::size_t>(bytes) / sizeof(Record));
    const std::size_t got = std::fread(recs.data(), sizeof(Record), recs.size(), f);
    std::fclose(f);
    recs.resize(got);
    return recs;
}

void write_file(const std::string& path, const std::vector<Record>& recs) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        std::cerr << "cannot open " << path << " for writing\n";
        std::exit(1);
    }
    std::fwrite(recs.data(), sizeof(Record), recs.size(), f);
    std::fclose(f);
}

int run(const CliOptions& o) {
    auto records = read_file(o.input);
    const std::uint64_t n = records.size();
    if (n == 0) {
        write_file(o.output, {});
        return 0;
    }
    PdmConfig cfg{.n = n, .m = o.mem, .d = o.disks, .b = o.block, .p = 1};
    cfg.validate();

    // Crash restartability (DESIGN.md §13): pin the scratch files under
    // names derived from the checkpoint path and keep them across crashes,
    // so a --resume invocation can adopt the interrupted run's blocks.
    const bool checkpointing = !o.checkpoint.empty();
    if ((checkpointing || o.resume) && o.algo != "balance") {
        std::cerr << "--checkpoint/--resume require --algo balance\n";
        return 2;
    }
    if (o.resume && !checkpointing) {
        std::cerr << "--resume requires --checkpoint FILE (the same one the crashed run used)\n";
        return 2;
    }
    ScratchOptions scratch;
    if (checkpointing) {
        scratch.tag = "ck_";
        for (const char c : o.checkpoint) {
            scratch.tag += std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_';
        }
        scratch.adopt = o.resume;
        scratch.keep = true; // a crash must leave the blocks behind for --resume
    }
    DiskArray disks(cfg.d, cfg.b, DiskBackend::kFile, o.scratch, Constraint::kIndependentDisks,
                    {}, {}, scratch);

    // Observability (DESIGN.md §11): install the tracer/registry for the
    // whole run so the layout and read-back I/O is captured too, not just
    // the sort. The manifest embeds the metrics snapshot, so --manifest
    // alone also turns collection on.
    const bool want_metrics = !o.metrics_path.empty() || !o.manifest_path.empty();
    Tracer tracer;
    MetricsRegistry metrics_reg;
    TracerInstallGuard trace_guard(o.trace_path.empty() ? nullptr : &tracer);
    MetricsInstallGuard metrics_guard(want_metrics ? &metrics_reg : nullptr);
    // --profile: one sampler for the whole run; the sort's own
    // ProfilerScope nests by refcount inside the scope below.
    std::unique_ptr<Profiler> profiler;
    if (!o.profile_path.empty()) {
        ProfilerConfig pcfg;
        pcfg.hz = o.profile_hz;
        profiler = std::make_unique<Profiler>(pcfg);
    }

    Timer timer;
    BlockRun run_in;
    {
        RunWriter w(disks);
        for (std::size_t off = 0; off < records.size(); off += cfg.m) {
            const std::size_t len = std::min<std::size_t>(cfg.m, records.size() - off);
            w.append(std::span<const Record>(records.data() + off, len));
        }
        run_in = w.finish();
    }

    IoStats io;
    std::uint64_t sorted_count = 0;
    BlockRun run_out;
    PhaseProfile phases;
    double sort_elapsed = 0;
    bool have_phases = false;
    SortReport report; // fed to --manifest; fully populated by balance only
    BalanceTimeline timeline; // --balance-timeline recorder (balance algo only)
    const bool want_timeline = !o.timeline_path.empty();
    if (o.algo == "balance") {
        BalanceOptions bal;
        bal.timeline = want_timeline ? &timeline : nullptr;
        SortJobConfig job;
        if (o.sketch) job.pivots(PivotMethod::kStreamingSketch);
        // --threads caps the real compute lanes (work-stealing executor);
        // the charged PRAM model still uses cfg.p processors.
        if (o.threads != 0) job.threads(o.threads);
        job.balance(bal)
            .observability(ObsPolicy{}
                               .tracer(o.trace_path.empty() ? nullptr : &tracer)
                               .registry(want_metrics ? &metrics_reg : nullptr)
                               .sampler(profiler.get()));
        DurabilityPolicy dur;
        dur.checkpoint(o.checkpoint);
        if (o.resume) dur.resume(o.checkpoint);
        job.durability(std::move(dur));
        run_out = balance_sort(disks, run_in, cfg, job, &report);
        io = report.io;
        phases = report.phases;
        sort_elapsed = report.elapsed_seconds;
        have_phases = true;
    } else if (o.algo == "greed") {
        ProfilerScope profile_scope(profiler.get());
        GreedSortReport rep;
        run_out = greed_sort(disks, run_in, cfg, &rep);
        io = rep.io;
        report.io = io;
    } else if (o.algo == "merge") {
        ProfilerScope profile_scope(profiler.get());
        StripedMergeReport rep;
        run_out = striped_merge_sort(disks, run_in, cfg, &rep);
        io = rep.io;
        report.io = io;
    } else {
        std::cerr << "unknown --algo " << o.algo << '\n';
        return 2;
    }
    sorted_count = run_out.n_records;

    {
        std::vector<Record> out;
        out.reserve(sorted_count);
        RunReader r(disks, run_out);
        std::vector<Record> chunk;
        while (r.remaining() > 0) {
            chunk.resize(std::min<std::uint64_t>(cfg.m, r.remaining()));
            r.read(chunk);
            out.insert(out.end(), chunk.begin(), chunk.end());
        }
        write_file(o.output, out);
    }

    if (checkpointing) {
        // The sort completed and the output landed: recovery state is no
        // longer needed. Release the pinned scratch (removed when `disks`
        // destructs) and the checkpoint record itself.
        disks.set_keep_scratch(false);
        std::error_code ec;
        std::filesystem::remove(o.checkpoint, ec);
        std::filesystem::remove(o.checkpoint + ".tmp", ec);
    }

    if (profiler != nullptr) {
        // Samples land in the trace too (one "profile N" lane per sampled
        // thread) — before the trace file below is serialized.
        if (!o.trace_path.empty()) profiler->emit_to_tracer(&tracer);
        if (!profiler->folded_file(o.profile_path)) {
            std::cerr << "cannot write " << o.profile_path << '\n';
            return 1;
        }
    }
    if (!o.trace_path.empty()) tracer.write_chrome_trace_file(o.trace_path);
    if (!o.metrics_path.empty()) metrics_reg.write_json_file(o.metrics_path);
    if (want_timeline) {
        if (o.algo != "balance") {
            std::cerr << "--balance-timeline only applies to --algo balance; nothing recorded\n";
        }
        if (!timeline.write_json_file(o.timeline_path)) {
            std::cerr << "cannot write " << o.timeline_path << '\n';
            return 1;
        }
    }
    if (!o.manifest_path.empty()) {
        RunManifest manifest;
        manifest.tool = "balsort_cli";
        manifest.algo = o.algo + (o.sketch ? "+sketch" : "");
        manifest.cfg = cfg;
        manifest.report = report;
        manifest.metrics = want_metrics ? &metrics_reg : nullptr;
        manifest.timeline = want_timeline && o.algo == "balance" ? &timeline : nullptr;
        manifest.write_json_file(o.manifest_path);
    }

    if (o.stats) {
        Table t({"metric", "value"});
        t.add_row({"records", Table::num(n)});
        t.add_row({"algorithm", o.algo + (o.sketch ? "+sketch" : "")});
        t.add_row({"parallel I/O steps", Table::num(io.io_steps())});
        t.add_row({"scratch bytes moved",
                   Table::num((io.blocks_read + io.blocks_written) * cfg.b * sizeof(Record))});
        t.add_row({"disk utilization", Table::fixed(100.0 * io.utilization(cfg.d), 1) + "%"});
        t.add_row({"recovery blocks", Table::num(io.recovery_blocks())});
        t.add_row({"io timeouts", Table::num(io.io_timeouts)});
        t.add_row({"checkpoints written", Table::num(report.checkpoints_written)});
        t.add_row({"resumes", Table::num(report.resumes)});
        t.add_row({"wall time (s)", Table::fixed(timer.seconds(), 2)});
        if (have_phases) {
            t.add_row({"sort elapsed (s)", Table::fixed(sort_elapsed, 2)});
            t.add_row({"  pivot phase (s)", Table::fixed(phases.pivot_seconds, 2)});
            t.add_row({"  balance phase (s)", Table::fixed(phases.balance_seconds, 2)});
            t.add_row({"  base-case phase (s)", Table::fixed(phases.base_case_seconds, 2)});
            t.add_row({"  emit phase (s)", Table::fixed(phases.emit_seconds, 2)});
            t.add_row({"staged prefetches", Table::num(phases.staged_prefetches)});
            t.add_row({"overlap hidden (s)", Table::fixed(phases.overlap_hidden_seconds, 3)});
            t.add_row({"pool hit rate", Table::fixed(100.0 * phases.pool_hit_rate(), 1) + "%"});
            // Stall-attribution budget (DESIGN.md §16): the same
            // compute/wait split balsortd's result table shows per job.
            t.add_row({"budget: compute (s)", Table::fixed(phases.compute_seconds(sort_elapsed), 2)});
            t.add_row({"budget: io-wait (s)", Table::fixed(phases.io_wait_seconds, 2)});
            t.add_row({"budget: gate-wait (s)", Table::fixed(phases.gate_wait_seconds, 2)});
            t.add_row({"budget: pool-wait (s)", Table::fixed(phases.pool_wait_seconds, 2)});
        }
        if (profiler != nullptr) {
            t.add_row({"profile samples", Table::num(profiler->sample_count())});
            t.add_row({"profile dropped", Table::num(profiler->dropped_samples())});
        }
        t.print(std::cout);
    }
    return 0;
}

int selftest(const CliOptions& parsed) {
    const std::string in = "/tmp/balsort_cli_selftest_in.bin";
    const std::string out = "/tmp/balsort_cli_selftest_out.bin";
    auto data = generate(Workload::kZipf, 200000, 1);
    write_file(in, data);
    // Artifact and shape flags ride along (CI generates its reference
    // trace/manifest/profile via `--selftest --disks 8 --trace ...`);
    // only memory shrinks to selftest scale unless explicitly set.
    CliOptions o = parsed;
    o.selftest = false;
    o.input = in;
    o.output = out;
    if (!o.mem_set) o.mem = 1 << 13;
    if (!o.disks_set) o.disks = 4;
    if (!o.block_set) o.block = 64;
    o.stats = true;
    if (int rc = run(o); rc != 0) return rc;
    auto sorted = read_file(out);
    const bool ok = is_sorted_permutation_of(data, sorted);
    std::filesystem::remove(in);
    std::filesystem::remove(out);
    std::cout << (ok ? "selftest OK\n" : "selftest FAILED\n");
    return ok ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    const CliOptions o = parse(argc, argv);
    return o.selftest ? selftest(o) : run(o);
}
